//! Per-stripe commit wait lists: the wake path behind [`Tx::retry`].
//!
//! A transaction that calls [`Tx::retry`](crate::Tx::retry) is saying "this
//! snapshot cannot proceed — run me again when it changes". The only events
//! that can change the snapshot are commits that write one of the stripes
//! the transaction read, so the runtime parks the thread here until exactly
//! such a commit happens (or a bounded deadline passes).
//!
//! # Protocol
//!
//! The orec table's stripes are hashed down onto a fixed set of *wait
//! buckets* (aliasing produces spurious wakeups, never missed ones — the
//! same trade-off as the orec striping itself). Each bucket holds an exact
//! waiter count plus a list of registered *parkers*, one
//! [`EventCount`](parking_lot::EventCount) per waiting thread:
//!
//! 1. The waiter samples its own parker version, registers the parker on
//!    every bucket its read set hashes to, and **then** validates the read
//!    snapshot against the live orec versions. A commit that raced ahead of
//!    the registration is caught by this validation; a commit that lands
//!    after it finds the parker registered and wakes it. A `SeqCst` fence on
//!    both sides closes the store-buffer window between "publish my
//!    registration" and "read your version stamp".
//! 2. If the snapshot is still current, the waiter parks on its own parker
//!    — a single futex word, regardless of how many stripes it watches —
//!    with a bounded deadline ([`TmConfig::retry_wait`]); on wake or expiry
//!    it deregisters from every bucket.
//! 3. The commit path calls [`notify_commit`](StripeWaitlist::notify_commit)
//!    with its written stripes *after* the new versions are installed. A
//!    bucket with zero waiters costs one atomic load; otherwise every
//!    registered parker is advanced (bump **and wake**).
//!
//! All waiting is futex/parker sleeping: the retry path contains no
//! `yield_now` poll loop at all, which is what the wait-op counters in
//! [`RetryStats`] let tests and `bench_retry` prove.
//!
//! [`Tx::retry`]: crate::Tx::retry
//! [`TmConfig::retry_wait`]: crate::config::TmConfig::retry_wait

use std::fmt;
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{EventCount, Mutex, WaitOutcome};

use crate::faults::FaultSite;
use crate::orec::OrecTable;

/// Most wait buckets a runtime allocates; stripes hash down onto these.
const MAX_BUCKETS: usize = 1024;

/// How one bounded retry-wait round ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RetryWaitOutcome {
    /// The read snapshot was already stale when (re)checked — no sleep, the
    /// transaction should re-run immediately.
    Changed,
    /// A committer writing a watched stripe woke the parker.
    Woken,
    /// The deadline expired with the snapshot unchanged.
    TimedOut,
}

/// Wait-op counters of the [`Tx::retry`](crate::Tx::retry) wake path,
/// aggregated per runtime and exposed through
/// [`TmRuntime::retry_stats`](crate::TmRuntime::retry_stats).
///
/// The waiter side proves *how* blocked transactions waited (`parked_waits`
/// never comes with a yield-poll counterpart because the path has none);
/// the committer side (`wakes_issued` / `wasted_wakes`) is the
/// wasted-wakeup ledger `bench_retry` reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Wait rounds that actually parked on the futex.
    pub parked_waits: u64,
    /// Parked rounds ended by a committer's wake.
    pub woken: u64,
    /// Parked rounds that expired with the snapshot unchanged.
    pub timed_out: u64,
    /// Rounds where validation caught a change before any sleep.
    pub changed_before_park: u64,
    /// Commit-side wake rounds that found at least one registered parker.
    pub wakes_issued: u64,
    /// Threads actually released by commit-side wakes.
    pub threads_woken: u64,
    /// Wake syscalls that released nobody (the parker's owner had already
    /// left — deadline expiry or a wake from another bucket in the same
    /// instant).
    pub wasted_wakes: u64,
}

struct Bucket {
    /// Exact number of parkers currently registered (fast no-waiter skip on
    /// the commit path).
    waiters: AtomicU32,
    list: Mutex<Vec<Arc<EventCount>>>,
}

/// The runtime-wide table of commit wait buckets (see the module docs).
pub(crate) struct StripeWaitlist {
    buckets: Box<[Bucket]>,
    mask: usize,
    parked_waits: AtomicU64,
    woken: AtomicU64,
    timed_out: AtomicU64,
    changed_before_park: AtomicU64,
    wakes_issued: AtomicU64,
    threads_woken: AtomicU64,
    wasted_wakes: AtomicU64,
}

impl StripeWaitlist {
    /// Creates a waitlist covering `stripes` orec stripes (a power of two).
    pub(crate) fn new(stripes: usize) -> Self {
        let n = stripes.clamp(1, MAX_BUCKETS);
        debug_assert!(n.is_power_of_two());
        let buckets: Vec<Bucket> = (0..n)
            .map(|_| Bucket {
                waiters: AtomicU32::new(0),
                list: Mutex::new(Vec::new()),
            })
            .collect();
        StripeWaitlist {
            buckets: buckets.into_boxed_slice(),
            mask: n - 1,
            parked_waits: AtomicU64::new(0),
            woken: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            changed_before_park: AtomicU64::new(0),
            wakes_issued: AtomicU64::new(0),
            threads_woken: AtomicU64::new(0),
            wasted_wakes: AtomicU64::new(0),
        }
    }

    /// True if some watched stripe moved past its observed version (or is
    /// mid-install): the retrying transaction's snapshot is stale and it
    /// should re-run rather than sleep.
    fn changed(orecs: &OrecTable, plan: &[(usize, u64)]) -> bool {
        plan.iter().any(|&(idx, version)| {
            let snap = orecs.at(idx).snapshot();
            snap.version() != version || snap.committing()
        })
    }

    /// One bounded retry-wait round for a thread whose read set validated to
    /// `plan` (deduplicated `(stripe, observed version)` pairs). `parker` is
    /// the thread's own event count; the same one must be passed on every
    /// round (registration lists hold clones of it).
    pub(crate) fn wait(
        &self,
        orecs: &OrecTable,
        plan: &[(usize, u64)],
        parker: &Arc<EventCount>,
        deadline: Instant,
    ) -> RetryWaitOutcome {
        // Probed before any bucket is touched, so an injected panic here
        // cannot leak a registration.
        let _ = crate::failpoint!(FaultSite::WaitRegister);
        let observed = parker.version();
        let mut buckets: Vec<usize> = plan.iter().map(|&(s, _)| s & self.mask).collect();
        buckets.sort_unstable();
        buckets.dedup();
        for &b in &buckets {
            let bucket = &self.buckets[b];
            bucket.waiters.fetch_add(1, Ordering::SeqCst);
            bucket.list.lock().push(Arc::clone(parker));
        }
        // Pairs with the fence in `notify_commit`: a committer either sees
        // the registration above, or this validation sees its version
        // stamps. Without it both sides could read stale state and the wake
        // would be lost for a full deadline round.
        fence(Ordering::SeqCst);
        // Registered-but-not-deregistered window: only delays and forced
        // spurious wakeups may be injected between here and the deregister
        // loop (a panic would leak the registration). `WaitValidate` makes
        // the validation claim a change, `EventPark` skips the park as if
        // notified — both exercise the callers' revalidate-and-re-run loop.
        let outcome = if crate::failpoint!(FaultSite::WaitValidate) || Self::changed(orecs, plan) {
            self.changed_before_park.fetch_add(1, Ordering::Relaxed);
            RetryWaitOutcome::Changed
        } else if crate::failpoint!(FaultSite::EventPark) {
            self.woken.fetch_add(1, Ordering::Relaxed);
            RetryWaitOutcome::Woken
        } else {
            self.parked_waits.fetch_add(1, Ordering::Relaxed);
            match parker.wait_while_eq(observed, Some(deadline)) {
                WaitOutcome::Advanced => {
                    self.woken.fetch_add(1, Ordering::Relaxed);
                    RetryWaitOutcome::Woken
                }
                WaitOutcome::TimedOut => {
                    self.timed_out.fetch_add(1, Ordering::Relaxed);
                    RetryWaitOutcome::TimedOut
                }
            }
        };
        for &b in &buckets {
            let bucket = &self.buckets[b];
            {
                let mut list = bucket.list.lock();
                if let Some(pos) = list.iter().position(|p| Arc::ptr_eq(p, parker)) {
                    list.swap_remove(pos);
                }
            }
            bucket.waiters.fetch_sub(1, Ordering::SeqCst);
        }
        outcome
    }

    /// Wakes every parker registered on the buckets of `stripes`. Called by
    /// the commit path *after* the new orec versions are installed, so a
    /// woken (or racing) waiter always observes the stripe moved.
    ///
    /// Costs one atomic load per distinct bucket when nobody is waiting.
    pub(crate) fn notify_commit(&self, stripes: &[usize]) {
        if stripes.is_empty() {
            return;
        }
        // A panic injected here unwinds out of a commit whose values are
        // already durable: waiters miss this wake but revalidate on their
        // bounded deadline, so the system degrades to a delayed wakeup
        // rather than a lost one.
        let _ = crate::failpoint!(FaultSite::WaitWake);
        // Pairs with the fence in `wait` (see there).
        fence(Ordering::SeqCst);
        for (i, &stripe) in stripes.iter().enumerate() {
            let b = stripe & self.mask;
            // Dedup without allocating: written-stripe sets are small.
            if stripes[..i].iter().any(|&prev| prev & self.mask == b) {
                continue;
            }
            let bucket = &self.buckets[b];
            if bucket.waiters.load(Ordering::SeqCst) == 0 {
                continue;
            }
            // Snapshot the parker list and wake *outside* the bucket lock:
            // a woken waiter's first action is to re-take this lock to
            // deregister, so advancing under it would convoy every waiter
            // behind the committer's wake syscalls. Waking a parker whose
            // owner already left is harmless — the owner resamples its
            // version before the next registration, so a stale bump can at
            // worst cost one spurious (counted) wake.
            let parkers: Vec<Arc<EventCount>> = {
                let list = bucket.list.lock();
                if list.is_empty() {
                    continue;
                }
                list.clone()
            };
            self.wakes_issued.fetch_add(1, Ordering::Relaxed);
            let mut released = 0u64;
            let mut wasted = 0u64;
            for parker in &parkers {
                let adv = parker.advance();
                released += adv.woken as u64;
                if adv.wake_issued && adv.woken == 0 {
                    wasted += 1;
                }
            }
            self.threads_woken.fetch_add(released, Ordering::Relaxed);
            self.wasted_wakes.fetch_add(wasted, Ordering::Relaxed);
        }
    }

    /// Snapshot of the wait-op counters.
    pub(crate) fn stats(&self) -> RetryStats {
        RetryStats {
            parked_waits: self.parked_waits.load(Ordering::Relaxed),
            woken: self.woken.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            changed_before_park: self.changed_before_park.load(Ordering::Relaxed),
            wakes_issued: self.wakes_issued.load(Ordering::Relaxed),
            threads_woken: self.threads_woken.load(Ordering::Relaxed),
            wasted_wakes: self.wasted_wakes.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for StripeWaitlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StripeWaitlist")
            .field("buckets", &self.buckets.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thread::ThreadId;
    use std::time::Duration;

    fn table_with_version(stripe: usize, version: u64) -> OrecTable {
        let orecs = OrecTable::new(64);
        if version > 0 {
            let o = orecs.at(stripe);
            assert!(o.try_lock(o.snapshot(), ThreadId::from_u16(1)));
            o.unlock_commit(ThreadId::from_u16(1), version);
        }
        orecs
    }

    #[test]
    fn stale_plan_is_caught_before_parking() {
        let wl = StripeWaitlist::new(64);
        let orecs = table_with_version(3, 7);
        let parker = Arc::new(EventCount::new());
        // Observed version 6, stripe already at 7: no sleep.
        let outcome = wl.wait(
            &orecs,
            &[(3, 6)],
            &parker,
            Instant::now() + Duration::from_secs(30),
        );
        assert_eq!(outcome, RetryWaitOutcome::Changed);
        assert_eq!(wl.stats().changed_before_park, 1);
        assert_eq!(wl.stats().parked_waits, 0);
    }

    #[test]
    fn unchanged_plan_times_out_at_the_deadline() {
        let wl = StripeWaitlist::new(64);
        let orecs = table_with_version(3, 7);
        let parker = Arc::new(EventCount::new());
        let deadline = Instant::now() + Duration::from_millis(20);
        let outcome = wl.wait(&orecs, &[(3, 7)], &parker, deadline);
        assert_eq!(outcome, RetryWaitOutcome::TimedOut);
        assert!(Instant::now() >= deadline, "must not report expiry early");
        let stats = wl.stats();
        assert_eq!(stats.parked_waits, 1);
        assert_eq!(stats.timed_out, 1);
    }

    #[test]
    fn commit_to_a_watched_stripe_wakes_the_parker() {
        let wl = Arc::new(StripeWaitlist::new(64));
        let orecs = Arc::new(table_with_version(3, 7));
        let parker = Arc::new(EventCount::new());
        let waiter = {
            let wl = Arc::clone(&wl);
            let orecs = Arc::clone(&orecs);
            let parker = Arc::clone(&parker);
            std::thread::spawn(move || {
                wl.wait(
                    &orecs,
                    &[(3, 7)],
                    &parker,
                    Instant::now() + Duration::from_secs(30),
                )
            })
        };
        // Deterministic handshake: the parker's own waiter count proves it
        // is inside the futex path before the "commit" fires.
        while parker.waiters() == 0 {
            std::thread::yield_now();
        }
        // Install the new version, then notify — commit order.
        let o = orecs.at(3);
        assert!(o.try_lock(o.snapshot(), ThreadId::from_u16(2)));
        o.unlock_commit(ThreadId::from_u16(2), 8);
        wl.notify_commit(&[3]);
        assert_eq!(waiter.join().unwrap(), RetryWaitOutcome::Woken);
        let stats = wl.stats();
        assert_eq!(stats.woken, 1);
        assert_eq!(stats.wakes_issued, 1);
        assert_eq!(stats.threads_woken, 1);
    }

    #[test]
    fn commit_to_an_unwatched_bucket_is_a_single_load() {
        let wl = StripeWaitlist::new(64);
        // No waiters anywhere: notify must do nothing (and count nothing).
        wl.notify_commit(&[0, 1, 2, 3]);
        assert_eq!(wl.stats().wakes_issued, 0);
    }

    #[test]
    fn empty_plan_waits_out_the_deadline() {
        // A retry with an empty read set can never be woken; the bounded
        // deadline is what keeps it from blocking forever.
        let wl = StripeWaitlist::new(64);
        let orecs = OrecTable::new(64);
        let parker = Arc::new(EventCount::new());
        let deadline = Instant::now() + Duration::from_millis(10);
        let outcome = wl.wait(&orecs, &[], &parker, deadline);
        assert_eq!(outcome, RetryWaitOutcome::TimedOut);
    }

    #[test]
    fn deregistration_leaves_no_residue() {
        let wl = StripeWaitlist::new(64);
        let orecs = OrecTable::new(64);
        let parker = Arc::new(EventCount::new());
        let _ = wl.wait(
            &orecs,
            &[(1, 0), (2, 0)],
            &parker,
            Instant::now() + Duration::from_millis(5),
        );
        for bucket in wl.buckets.iter() {
            assert_eq!(bucket.waiters.load(Ordering::SeqCst), 0);
            assert!(bucket.list.lock().is_empty());
        }
        // A later commit wakes nobody and wastes nothing.
        wl.notify_commit(&[1, 2]);
        assert_eq!(wl.stats().wakes_issued, 0);
        assert_eq!(wl.stats().wasted_wakes, 0);
    }
}
