//! Per-thread transaction contexts and the runtime's thread registry.
//!
//! Every OS thread that executes transactions against a
//! [`TmRuntime`](crate::TmRuntime) is registered once and receives a dense
//! [`ThreadId`]. The identifier is packed into ownership records so that any
//! thread can see *who* holds a write lock (the paper's "visible writes"
//! requirement) and, for the SwissTM-like contention manager, reach the
//! owner's context to request a remote abort.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{EventCount, RwLock};

use crate::epoch::{AttemptEpochs, EpochCell, EpochWaitOutcome};

/// Maximum number of threads a single runtime can register.
///
/// Thread identifiers are packed into a 15-bit orec field; we reserve id 0 as
/// "nobody", leaving 32766 usable slots — far more than any benchmark spawns.
pub const MAX_THREADS: usize = 1 << 15;

/// Dense identifier of a registered transactional thread.
///
/// Ids start at 1; 0 is reserved for "no owner" in ownership records.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub(crate) u16);

impl ThreadId {
    /// Sentinel meaning "no thread".
    pub const NONE: ThreadId = ThreadId(0);

    /// Returns the raw id.
    pub fn as_u16(self) -> u16 {
        self.0
    }

    /// Returns the zero-based index of this thread in registry vectors.
    ///
    /// # Panics
    ///
    /// Panics if called on [`ThreadId::NONE`].
    pub fn index(self) -> usize {
        assert!(self.0 != 0, "ThreadId::NONE has no index");
        (self.0 - 1) as usize
    }

    /// Rebuilds a `ThreadId` from its raw representation.
    pub(crate) fn from_raw(raw: u16) -> Self {
        ThreadId(raw)
    }

    /// Builds a `ThreadId` from a raw value.
    ///
    /// Ids are normally allocated by the runtime's registry; this
    /// constructor exists for scheduler unit tests and tooling that need to
    /// fabricate ids.
    pub fn from_u16(raw: u16) -> Self {
        ThreadId(raw)
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            write!(f, "ThreadId(NONE)")
        } else {
            write!(f, "ThreadId({})", self.0)
        }
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Shared, concurrently accessible state of one registered thread.
///
/// Other threads touch this only through atomics: the contention manager may
/// set [`kill_requested`](ThreadCtx::request_kill), and statistics readers
/// aggregate the counters.
#[derive(Debug)]
pub struct ThreadCtx {
    id: ThreadId,
    /// Set by a higher-priority conflicting transaction (SwissTM-style
    /// two-phase contention management). Polled at every read/write.
    kill_requested: AtomicBool,
    /// Number of transactional accesses performed by the *current* attempt;
    /// doubles as the "work done" priority of the greedy CM phase.
    accesses: AtomicU64,
    /// Commits performed by this thread.
    pub(crate) commits: AtomicU64,
    /// Aborts suffered by this thread.
    pub(crate) aborts: AtomicU64,
    /// Attempts by this thread that ended in [`Tx::retry`] (deliberate
    /// waits, counted apart from conflict aborts; the runtime-wide
    /// `RetryStats` break down how each round then waited).
    ///
    /// [`Tx::retry`]: crate::Tx::retry
    pub(crate) retry_waits: AtomicU64,
    /// Read-only transactions completed by this thread
    /// ([`TmRuntime::read_only`](crate::TmRuntime::read_only)). Counted
    /// apart from `commits` so scheduler policies keyed on the read-write
    /// success rate never see read-only traffic.
    pub(crate) ro_commits: AtomicU64,
    /// Individual reads performed inside read-only transactions.
    pub(crate) ro_reads: AtomicU64,
    /// Snapshot revalidations inside read-only transactions: timestamp
    /// extensions plus whole-body restarts. A pure measure of how often
    /// writers invalidated a reader's snapshot — never booked as aborts.
    pub(crate) ro_revalidations: AtomicU64,
    /// Orec stripes acquired (write locks taken) by this thread. A declared
    /// read-only workload must leave this at zero — the lock-free claim,
    /// asserted by tests through [`ThreadStats`](crate::ThreadStats).
    pub(crate) orec_acquires: AtomicU64,
    /// This thread's retry parker: the single event count it sleeps on
    /// while blocked in [`Tx::retry`](crate::Tx::retry), registered on the
    /// wait buckets of its read set (see `waitlist.rs`). `Arc` because the
    /// bucket lists hold clones of it.
    pub(crate) retry_parker: Arc<EventCount>,
    /// The *attempt epoch*: advanced (bump + wake) by the runtime every
    /// time an attempt finishes, after the completion hook has run, and
    /// retired when the OS thread exits (a departed thread's epoch never
    /// advances again, so waiters treat it as absent; the retirement
    /// advance wakes anyone already parked). A scheduler that serialized a
    /// victim behind this thread sleeps on this cell (DESIGN.md §8.5).
    epoch: EpochCell,
}

impl ThreadCtx {
    fn new(id: ThreadId) -> Self {
        ThreadCtx {
            id,
            kill_requested: AtomicBool::new(false),
            accesses: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            aborts: AtomicU64::new(0),
            retry_waits: AtomicU64::new(0),
            ro_commits: AtomicU64::new(0),
            ro_reads: AtomicU64::new(0),
            ro_revalidations: AtomicU64::new(0),
            orec_acquires: AtomicU64::new(0),
            retry_parker: Arc::new(EventCount::new()),
            epoch: EpochCell::default(),
        }
    }

    /// The id of this thread.
    pub fn id(&self) -> ThreadId {
        self.id
    }

    /// Asks the owning thread to abort its current transaction attempt.
    ///
    /// Used by the SwissTM-like contention manager when the requester has
    /// higher priority than the lock holder.
    pub fn request_kill(&self) {
        self.kill_requested.store(true, Ordering::Release);
    }

    /// Returns and clears the kill request flag.
    pub(crate) fn take_kill_request(&self) -> bool {
        self.kill_requested.swap(false, Ordering::AcqRel)
    }

    /// True if a kill has been requested but not yet consumed.
    pub fn kill_pending(&self) -> bool {
        self.kill_requested.load(Ordering::Acquire)
    }

    /// Resets the per-attempt access counter.
    pub(crate) fn reset_accesses(&self) {
        self.accesses.store(0, Ordering::Relaxed);
    }

    /// Records one transactional access and returns the new total.
    pub(crate) fn bump_accesses(&self) -> u64 {
        self.accesses.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Number of accesses performed by the current attempt (CM priority).
    pub fn accesses(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }

    /// Total commits by this thread.
    pub fn commit_count(&self) -> u64 {
        self.commits.load(Ordering::Relaxed)
    }

    /// Total aborts by this thread.
    pub fn abort_count(&self) -> u64 {
        self.aborts.load(Ordering::Relaxed)
    }

    /// Total attempts by this thread that ended in `Tx::retry`.
    pub fn retry_wait_count(&self) -> u64 {
        self.retry_waits.load(Ordering::Relaxed)
    }

    /// Total read-only transactions completed by this thread.
    pub fn ro_commit_count(&self) -> u64 {
        self.ro_commits.load(Ordering::Relaxed)
    }

    /// Total reads performed inside read-only transactions.
    pub fn ro_read_count(&self) -> u64 {
        self.ro_reads.load(Ordering::Relaxed)
    }

    /// Total read-only snapshot revalidations (extensions + restarts).
    pub fn ro_revalidation_count(&self) -> u64 {
        self.ro_revalidations.load(Ordering::Relaxed)
    }

    /// Total orec stripes this thread has write-locked.
    pub fn orec_acquire_count(&self) -> u64 {
        self.orec_acquires.load(Ordering::Relaxed)
    }

    /// The current attempt epoch. Conflict paths sample this *at detection
    /// time* and stamp it into the [`Abort`](crate::Abort), so a scheduler
    /// waiting for "the conflicting attempt to finish" compares against the
    /// epoch of that attempt, not of whatever the enemy runs later.
    pub fn attempt_epoch(&self) -> u32 {
        self.epoch.version()
    }

    /// The current attempt epoch, or `None` once this thread departed.
    pub(crate) fn attempt_epoch_if_live(&self) -> Option<u32> {
        self.epoch.version_if_live()
    }

    /// Advances the attempt epoch, waking every thread serialized behind
    /// this one. Called by the runtime after the completion hook of each
    /// attempt.
    pub(crate) fn finish_attempt(&self) {
        // Delay-only site: this also runs from panic-cleanup guards.
        let _ = crate::failpoint!(crate::faults::FaultSite::EpochAdvance);
        self.epoch.advance();
    }

    /// Marks this thread as departed and wakes its epoch waiters. Runs from
    /// the thread-local registration guard when the OS thread exits.
    pub(crate) fn retire(&self) {
        // Delay-only site: this runs inside a TLS destructor, where a panic
        // would abort the process.
        let _ = crate::failpoint!(crate::faults::FaultSite::EpochRetire);
        self.epoch.retire();
    }

    /// True once the owning OS thread has exited.
    pub fn departed(&self) -> bool {
        self.epoch.departed()
    }

    /// Parks until the attempt epoch differs from `observed`, this thread
    /// departs (reported as [`EpochWaitOutcome::Absent`] up front), or
    /// `deadline` passes.
    pub(crate) fn wait_attempt_change(&self, observed: u32, deadline: Instant) -> EpochWaitOutcome {
        self.epoch.wait_change(observed, deadline)
    }

    /// Exact number of threads parked on this thread's attempt epoch.
    pub fn epoch_waiters(&self) -> u32 {
        self.epoch.waiters()
    }
}

/// Registry of all thread contexts of one runtime.
///
/// Registration is rare (once per thread), lookup is hot (contention
/// manager); contexts are stored behind an `RwLock<Vec<Arc<..>>>` where the
/// read path is a shared lock plus an index.
pub(crate) struct ThreadRegistry {
    threads: RwLock<Vec<std::sync::Arc<ThreadCtx>>>,
}

impl ThreadRegistry {
    pub(crate) fn new() -> Self {
        ThreadRegistry {
            threads: RwLock::new(Vec::new()),
        }
    }

    /// Registers a new thread and returns its context.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_THREADS`] threads register.
    pub(crate) fn register(&self) -> std::sync::Arc<ThreadCtx> {
        let mut guard = self.threads.write();
        let id = guard.len() + 1;
        assert!(id < MAX_THREADS, "too many registered threads");
        let ctx = std::sync::Arc::new(ThreadCtx::new(ThreadId(id as u16)));
        guard.push(std::sync::Arc::clone(&ctx));
        ctx
    }

    /// Looks up a context by id. Returns `None` for [`ThreadId::NONE`] or
    /// unknown ids.
    pub(crate) fn get(&self, id: ThreadId) -> Option<std::sync::Arc<ThreadCtx>> {
        if id.0 == 0 {
            return None;
        }
        self.threads.read().get(id.index()).cloned()
    }

    /// Number of registered threads.
    pub(crate) fn len(&self) -> usize {
        self.threads.read().len()
    }

    /// Snapshot of all registered contexts, for statistics aggregation.
    pub(crate) fn snapshot(&self) -> Vec<std::sync::Arc<ThreadCtx>> {
        self.threads.read().clone()
    }
}

impl AttemptEpochs for ThreadRegistry {
    fn epoch_of(&self, thread: ThreadId) -> Option<u32> {
        self.get(thread).and_then(|ctx| ctx.attempt_epoch_if_live())
    }

    fn wait_epoch_change(
        &self,
        thread: ThreadId,
        observed: u32,
        deadline: Instant,
    ) -> EpochWaitOutcome {
        self.get(thread).map_or(EpochWaitOutcome::Absent, |ctx| {
            ctx.wait_attempt_change(observed, deadline)
        })
    }

    fn waiters_on(&self, thread: ThreadId) -> u32 {
        self.get(thread).map_or(0, |ctx| ctx.epoch_waiters())
    }
}

impl fmt::Debug for ThreadRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadRegistry")
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_assigns_dense_ids_from_one() {
        let reg = ThreadRegistry::new();
        let a = reg.register();
        let b = reg.register();
        assert_eq!(a.id().as_u16(), 1);
        assert_eq!(b.id().as_u16(), 2);
        assert_eq!(a.id().index(), 0);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn lookup_by_id() {
        let reg = ThreadRegistry::new();
        let a = reg.register();
        let found = reg.get(a.id()).expect("registered thread must be found");
        assert_eq!(found.id(), a.id());
        assert!(reg.get(ThreadId::NONE).is_none());
        assert!(reg.get(ThreadId(42)).is_none());
    }

    #[test]
    fn kill_request_round_trip() {
        let reg = ThreadRegistry::new();
        let a = reg.register();
        assert!(!a.take_kill_request());
        a.request_kill();
        assert!(a.kill_pending());
        assert!(a.take_kill_request());
        assert!(!a.take_kill_request(), "flag must be consumed");
    }

    #[test]
    fn access_counter_tracks_work() {
        let reg = ThreadRegistry::new();
        let a = reg.register();
        assert_eq!(a.bump_accesses(), 1);
        assert_eq!(a.bump_accesses(), 2);
        a.reset_accesses();
        assert_eq!(a.accesses(), 0);
    }

    #[test]
    #[should_panic(expected = "no index")]
    fn none_id_has_no_index() {
        let _ = ThreadId::NONE.index();
    }

    #[test]
    fn attempt_epoch_advances_on_finish() {
        let reg = ThreadRegistry::new();
        let a = reg.register();
        assert_eq!(a.attempt_epoch(), 0);
        a.finish_attempt();
        a.finish_attempt();
        assert_eq!(a.attempt_epoch(), 2);
        assert_eq!(reg.epoch_of(a.id()), Some(2));
    }

    #[test]
    fn retired_threads_are_absent_to_the_epoch_oracle() {
        let reg = ThreadRegistry::new();
        let a = reg.register();
        assert_eq!(reg.epoch_of(a.id()), Some(0));
        a.retire();
        assert!(a.departed());
        assert_eq!(reg.epoch_of(a.id()), None);
        let outcome = reg.wait_epoch_change(
            a.id(),
            1,
            Instant::now() + std::time::Duration::from_secs(5),
        );
        assert_eq!(outcome, EpochWaitOutcome::Absent, "must not stall");
    }

    #[test]
    fn retire_wakes_a_parked_epoch_waiter() {
        let reg = std::sync::Arc::new(ThreadRegistry::new());
        let a = reg.register();
        let id = a.id();
        let waiter = {
            let reg = std::sync::Arc::clone(&reg);
            std::thread::spawn(move || {
                reg.wait_epoch_change(id, 0, Instant::now() + std::time::Duration::from_secs(30))
            })
        };
        while reg.waiters_on(id) == 0 {
            std::thread::yield_now();
        }
        a.retire();
        assert_eq!(waiter.join().unwrap(), EpochWaitOutcome::Advanced);
    }
}
