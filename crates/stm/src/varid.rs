//! Stable identifiers for transactional variables.
//!
//! Every [`TVar`](crate::TVar) is assigned a [`VarId`] when it is created.
//! The identifier is what schedulers see: Bloom filters hash it, predicted
//! access sets store it, and the ownership-record table maps it to a stripe.
//! In the paper's terminology a `VarId` plays the role of an *address*
//! ("we use the term address for words in word-based TMs, and for objects in
//! object-based TMs").

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A stable, process-unique identifier for a transactional variable.
///
/// `VarId`s are allocated from a global monotonic counter, so they are unique
/// across runtimes within one process. They are `Copy` and hash cheaply,
/// which matters because schedulers handle them on every transactional read.
///
/// # Examples
///
/// ```
/// use shrink_stm::VarId;
///
/// let a = VarId::fresh();
/// let b = VarId::fresh();
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(u64);

static NEXT_VAR_ID: AtomicU64 = AtomicU64::new(1);

impl VarId {
    /// Allocates a fresh identifier from the global counter.
    pub fn fresh() -> Self {
        VarId(NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed))
    }

    /// Returns the raw numeric value of the identifier.
    ///
    /// Useful for hashing into Bloom filters or striping into lock tables.
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Reconstructs a `VarId` from a raw value.
    ///
    /// Intended for tests and for schedulers that transport identifiers
    /// through compact encodings; the value does not have to correspond to a
    /// live variable.
    pub fn from_u64(raw: u64) -> Self {
        VarId(raw)
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VarId({})", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_unique_and_monotonic() {
        let a = VarId::fresh();
        let b = VarId::fresh();
        let c = VarId::fresh();
        assert!(a.as_u64() < b.as_u64());
        assert!(b.as_u64() < c.as_u64());
    }

    #[test]
    fn round_trips_through_raw_value() {
        let a = VarId::fresh();
        assert_eq!(a, VarId::from_u64(a.as_u64()));
    }

    #[test]
    fn fresh_ids_are_unique_across_threads() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| (0..1000).map(|_| VarId::fresh()).collect::<Vec<_>>()))
            .collect();
        let mut all: Vec<VarId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n);
    }

    #[test]
    fn debug_and_display_are_nonempty() {
        let a = VarId::from_u64(7);
        assert_eq!(format!("{a:?}"), "VarId(7)");
        assert_eq!(format!("{a}"), "v7");
    }
}
