//! The transactional-memory runtime: configuration, thread registration and
//! the retry loop.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::backoff::{pause, retry_backoff};
use crate::clock::GlobalClock;
use crate::config::{BackendKind, CmPolicy, TmConfig, TxnKind, WaitPolicy};
use crate::error::{AbortReason, TmError, TxResult};
use crate::faults::FaultSite;
use crate::orec::OrecTable;
use crate::sched::{NoopScheduler, SchedCtx, TxScheduler};
use crate::stats::{ThreadStats, TmStats};
use crate::thread::{ThreadCtx, ThreadRegistry};
use crate::txn::{ReadTx, Tx};
use crate::visible::VisibleWrites;
use crate::waitlist::{RetryStats, StripeWaitlist};

static NEXT_RUNTIME_ID: AtomicU64 = AtomicU64::new(1);

/// A thread's registration with one runtime. Dropping it — which happens in
/// the thread-local destructor when the OS thread exits — retires the
/// context: the thread's attempt epoch is marked departed and advanced one
/// final time, so a scheduler parked on it wakes instead of stalling its
/// full wait bound against a counter that will never move again.
struct Registration(Arc<ThreadCtx>);

impl Drop for Registration {
    fn drop(&mut self) {
        self.0.retire();
    }
}

thread_local! {
    /// Per-OS-thread map from runtime id to this thread's context in that
    /// runtime. A thread registers lazily on its first transaction.
    static THREAD_CTXS: RefCell<HashMap<u64, Registration>> = RefCell::new(HashMap::new());
}

pub(crate) struct RuntimeInner {
    pub(crate) id: u64,
    pub(crate) config: TmConfig,
    pub(crate) clock: GlobalClock,
    pub(crate) orecs: OrecTable,
    pub(crate) scheduler: Arc<dyn TxScheduler>,
    pub(crate) registry: ThreadRegistry,
    /// Per-stripe commit wait buckets: where `Tx::retry` parks and what the
    /// commit path wakes (DESIGN.md §9).
    pub(crate) retry_waits: StripeWaitlist,
}

impl Drop for RuntimeInner {
    fn drop(&mut self) {
        // The last handle is gone: remove the process-global registry entry
        // so `registry::lookup` stops resolving this id. (The entry holds a
        // Weak, so lookups already failed to upgrade; this reclaims the
        // slot.)
        crate::registry::deregister_runtime(self.id);
    }
}

/// How [`run_until_block`](TmRuntime::run_until_block) left the
/// transaction: committed with a value, or rolled back at a deliberate
/// [`Tx::retry`] with the wait plan it would have parked on.
pub(crate) enum BlockOutcome<T> {
    /// An attempt committed.
    Committed(T),
    /// The body retried: the deduplicated `(stripe, observed version)`
    /// pairs of the attempt's read set — what a commit must touch to make
    /// re-running worthwhile.
    Blocked(Vec<(usize, u64)>),
}

/// RAII bracket around one transaction attempt.
///
/// Armed before the scheduler's `before_start` hook and disarmed by
/// [`complete`](AttemptGuard::complete) after a normal completion hook ran.
/// If the attempt is abandoned instead — the body panicked and unwinding is
/// in progress, or a non-retryable error (foreign `TVar`) returned early —
/// the drop handler restores the invariants a completion hook would have:
/// it tells the scheduler to reset per-thread state (releasing any
/// serialization taken in `before_start`) and advances the attempt epoch so
/// threads serialized behind this one wake instead of stalling their full
/// wait bound.
///
/// Declared *before* the `Tx` in the attempt loop, so during an unwind the
/// `Tx` drops first (rollback: stripe locks released, versions restored)
/// and this guard second — the scheduler reset never observes the attempt's
/// stripes still locked.
pub(crate) struct AttemptGuard<'a> {
    inner: &'a RuntimeInner,
    ctx: &'a ThreadCtx,
    kind: TxnKind,
    armed: bool,
}

impl<'a> AttemptGuard<'a> {
    pub(crate) fn new(inner: &'a RuntimeInner, ctx: &'a ThreadCtx, kind: TxnKind) -> Self {
        AttemptGuard {
            inner,
            ctx,
            kind,
            armed: true,
        }
    }

    pub(crate) fn sched_ctx(&self) -> SchedCtx<'_> {
        SchedCtx {
            thread: self.ctx.id(),
            visible: &self.inner.orecs,
            epochs: &self.inner.registry,
            kind: self.kind,
        }
    }

    /// Normal completion: a completion hook ran; advance the attempt epoch
    /// (read-write attempts only — read-only transactions never advance
    /// epochs, in either completion mode) and disarm.
    pub(crate) fn complete(mut self) {
        self.armed = false;
        if self.kind == TxnKind::ReadWrite {
            // Bump-and-wake *after* the hook: a victim released here
            // observes the enemy's scheduler bookkeeping settled.
            self.ctx.finish_attempt();
        }
    }
}

impl Drop for AttemptGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        self.inner.scheduler.on_reset(&self.sched_ctx());
        if self.kind == TxnKind::ReadWrite {
            self.ctx.finish_attempt();
        }
    }
}

/// Builder for [`TmRuntime`].
///
/// # Examples
///
/// ```
/// use shrink_stm::{TmRuntime, BackendKind, WaitPolicy};
///
/// let rt = TmRuntime::builder()
///     .backend(BackendKind::Tiny)
///     .wait_policy(WaitPolicy::Busy)
///     .orec_table_size(1 << 12)
///     .build();
/// assert_eq!(rt.config().backend, BackendKind::Tiny);
/// ```
#[derive(Debug)]
pub struct TmBuilder {
    config: TmConfig,
    scheduler: Arc<dyn TxScheduler>,
}

impl TmBuilder {
    fn new() -> Self {
        TmBuilder {
            config: TmConfig::default(),
            scheduler: Arc::new(NoopScheduler),
        }
    }

    /// Selects the conflict-detection backend.
    #[must_use]
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Selects the waiting policy.
    #[must_use]
    pub fn wait_policy(mut self, policy: WaitPolicy) -> Self {
        self.config.wait_policy = policy;
        self
    }

    /// Sets the number of ownership-record stripes.
    #[must_use]
    pub fn orec_table_size(mut self, size: usize) -> Self {
        self.config.orec_table_size = size;
        self
    }

    /// Sets the reader's spin budget against committing stripes.
    #[must_use]
    pub fn read_spin_budget(mut self, spins: u32) -> Self {
        self.config.read_spin_budget = spins;
        self
    }

    /// Sets the Tiny backend's busy-wait budget on locked stripes.
    #[must_use]
    pub fn lock_spin_budget(mut self, spins: u32) -> Self {
        self.config.lock_spin_budget = spins;
        self
    }

    /// Sets the Swiss contention manager's timid-phase threshold.
    #[must_use]
    pub fn cm_timid_threshold(mut self, accesses: u64) -> Self {
        self.config.cm_timid_threshold = accesses;
        self
    }

    /// Selects the write/write contention-management policy.
    #[must_use]
    pub fn cm_policy(mut self, policy: CmPolicy) -> Self {
        self.config.cm_policy = policy;
        self
    }

    /// Sets how long a Swiss transaction waits for a killed victim.
    #[must_use]
    pub fn kill_wait_budget(mut self, spins: u32) -> Self {
        self.config.kill_wait_budget = spins;
        self
    }

    /// Sets the exponential retry backoff ceiling (power of two).
    #[must_use]
    pub fn backoff_ceiling(mut self, ceiling: u32) -> Self {
        self.config.backoff_ceiling = ceiling;
        self
    }

    /// Sets the bounded deadline of one parked [`Tx::retry`] round (the
    /// safety net against waits no commit will ever satisfy).
    ///
    /// Applies to thread-parked rounds only; a suspended
    /// [`TxFuture`](crate::future::TxFuture) is purely wake-driven and does
    /// not consult it. See [`TmConfig::retry_wait`] for the full round
    /// semantics, including how
    /// [`run_with_deadline`](TmRuntime::run_with_deadline) clamps each
    /// round to `min(now + retry_wait, deadline)`.
    #[must_use]
    pub fn retry_wait(mut self, deadline: Duration) -> Self {
        self.config.retry_wait = deadline;
        self
    }

    /// Replaces the whole configuration.
    #[must_use]
    pub fn config(mut self, config: TmConfig) -> Self {
        self.config = config;
        self
    }

    /// Installs a transaction scheduler (defaults to [`NoopScheduler`]).
    #[must_use]
    pub fn scheduler(mut self, scheduler: impl TxScheduler + 'static) -> Self {
        self.scheduler = Arc::new(scheduler);
        self
    }

    /// Installs an already-shared scheduler, letting the caller keep a typed
    /// handle to it (e.g. to read Shrink's prediction-accuracy counters).
    #[must_use]
    pub fn scheduler_arc(mut self, scheduler: Arc<dyn TxScheduler>) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Builds the runtime.
    pub fn build(self) -> TmRuntime {
        let orecs = OrecTable::new(self.config.orec_table_size);
        let retry_waits = StripeWaitlist::new(orecs.len());
        let inner = Arc::new(RuntimeInner {
            id: NEXT_RUNTIME_ID.fetch_add(1, Ordering::Relaxed),
            orecs,
            retry_waits,
            clock: GlobalClock::new(),
            registry: ThreadRegistry::new(),
            scheduler: self.scheduler,
            config: self.config,
        });
        // Publish the runtime in the process-global registry so
        // `registry::lookup` and cross-runtime selects can reach it by id.
        crate::registry::register_runtime(&inner);
        TmRuntime { inner }
    }
}

/// A software transactional memory runtime with a pluggable scheduler.
///
/// Cloning is cheap and shares the underlying memory; the usual pattern is
/// one runtime cloned into every worker thread.
///
/// # Examples
///
/// ```
/// use shrink_stm::{TmRuntime, TVar};
///
/// let rt = TmRuntime::new();
/// let counter = TVar::new(0u64);
///
/// let handles: Vec<_> = (0..4)
///     .map(|_| {
///         let rt = rt.clone();
///         let counter = counter.clone();
///         std::thread::spawn(move || {
///             for _ in 0..100 {
///                 rt.run(|tx| tx.modify(&counter, |v| v + 1));
///             }
///         })
///     })
///     .collect();
/// for h in handles {
///     h.join().unwrap();
/// }
/// assert_eq!(counter.snapshot(), 400);
/// ```
#[derive(Clone)]
pub struct TmRuntime {
    pub(crate) inner: Arc<RuntimeInner>,
}

impl TmRuntime {
    /// Creates a runtime with default configuration (Swiss backend,
    /// preemptive waiting, no scheduler).
    pub fn new() -> Self {
        Self::builder().build()
    }

    /// Starts building a customized runtime.
    pub fn builder() -> TmBuilder {
        TmBuilder::new()
    }

    /// The runtime's configuration.
    pub fn config(&self) -> &TmConfig {
        &self.inner.config
    }

    /// This runtime's process-unique id — the value `TVar`s are stamped
    /// with on first transactional access and that
    /// [`TmError::ForeignTVar`] reports for both sides of a cross-runtime
    /// misuse.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The installed scheduler's short name.
    pub fn scheduler_name(&self) -> &str {
        self.inner.scheduler.name()
    }

    /// The visible-writes oracle (the ownership-record table).
    pub fn visible_writes(&self) -> &dyn VisibleWrites {
        &self.inner.orecs
    }

    /// Registers the calling thread (if needed) and returns its context.
    pub(crate) fn current_ctx(&self) -> Arc<ThreadCtx> {
        THREAD_CTXS.with(|map| {
            let mut map = map.borrow_mut();
            if let Some(reg) = map.get(&self.inner.id) {
                return Arc::clone(&reg.0);
            }
            let ctx = self.inner.registry.register();
            self.inner.scheduler.on_thread_register(ctx.id());
            map.insert(self.inner.id, Registration(Arc::clone(&ctx)));
            ctx
        })
    }

    /// Runs `body` as a transaction, retrying until it commits, and returns
    /// its result.
    ///
    /// The body may run many times; it must be idempotent apart from its
    /// transactional effects. Values captured by mutable reference should be
    /// written only on the path that returns `Ok`.
    ///
    /// # Panics
    ///
    /// Propagates panics from `body`, and panics with the
    /// [`TmError::ForeignTVar`] message when the body accesses a `TVar`
    /// bound to a different runtime (use [`run_budgeted`] or
    /// [`run_with_deadline`] to handle that case as a value).
    ///
    /// A panic unwinding out of `run` leaves the runtime fully reusable — a
    /// tested guarantee, not best-effort: the attempt's drop guards release
    /// stripe locks and restore their versions, release any scheduler
    /// serialization taken in `before_start`, reset the scheduler's
    /// per-thread attempt state, and advance the attempt epoch with a final
    /// wake so threads serialized behind the panicking one proceed. The
    /// transaction itself did not commit (its buffered writes are
    /// discarded), and subsequent transactions on any thread — including
    /// the panicking one — run normally.
    ///
    /// [`run_budgeted`]: TmRuntime::run_budgeted
    /// [`run_with_deadline`]: TmRuntime::run_with_deadline
    pub fn run<T>(&self, body: impl FnMut(&mut Tx<'_>) -> TxResult<T>) -> T {
        match self.run_attempts(u64::MAX, None, body) {
            Ok(v) => v,
            Err(err @ TmError::ForeignTVar { .. }) => panic!("{err}"),
            Err(_) => unreachable!("unbounded retries cannot be exhausted"),
        }
    }

    /// Runs `body` as a transaction but gives up after `max_attempts`
    /// attempts.
    ///
    /// # Errors
    ///
    /// Returns [`TmError::RetryLimitExceeded`] if no attempt committed, or
    /// [`TmError::ForeignTVar`] if the body accessed a `TVar` bound to a
    /// different runtime.
    pub fn run_budgeted<T>(
        &self,
        max_attempts: u64,
        body: impl FnMut(&mut Tx<'_>) -> TxResult<T>,
    ) -> Result<T, TmError> {
        self.run_attempts(max_attempts, None, body)
    }

    /// Runs `body` as a transaction, retrying until it commits or until
    /// `deadline` passes while the transaction is blocked in [`Tx::retry`]
    /// — the time-bounded sibling of [`run_budgeted`](TmRuntime::run_budgeted)
    /// for bodies that *park* rather than conflict: a consumer waiting on a
    /// queue that may stay empty forever, a predicate no writer ever makes
    /// true.
    ///
    /// The deadline bounds **blocking**, not total execution: an attempt
    /// that is actively running is never interrupted, and a wake that
    /// arrives just before the deadline still gets its re-run. Once the
    /// deadline has passed, a blocked transaction stops parking and the
    /// call returns.
    ///
    /// # Errors
    ///
    /// Returns [`TmError::RetryTimeout`] when the deadline passed with the
    /// transaction still blocked, or [`TmError::ForeignTVar`] for
    /// cross-runtime access.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::time::{Duration, Instant};
    /// use shrink_stm::{TmError, TmRuntime, TVar};
    ///
    /// let rt = TmRuntime::new();
    /// let inbox: TVar<Option<u32>> = TVar::new(None);
    /// let got = rt.run_with_deadline(Instant::now() + Duration::from_millis(50), |tx| {
    ///     match tx.read(&inbox)? {
    ///         Some(v) => Ok(v),
    ///         None => tx.retry(), // nobody ever fills the inbox
    ///     }
    /// });
    /// assert!(matches!(got, Err(TmError::RetryTimeout { .. })));
    /// ```
    pub fn run_with_deadline<T>(
        &self,
        deadline: Instant,
        body: impl FnMut(&mut Tx<'_>) -> TxResult<T>,
    ) -> Result<T, TmError> {
        self.run_attempts(u64::MAX, Some(deadline), body)
    }

    /// Runs `first` as a transaction, falling back to `second` whenever
    /// `first` ends in [`Tx::retry`] — the top-level form of
    /// [`Tx::or_else`], retrying until the composition commits.
    ///
    /// If *both* branches retry, the thread parks on the union of their
    /// read sets and the composition re-runs when any of it changes.
    ///
    /// # Examples
    ///
    /// ```
    /// use shrink_stm::{TmRuntime, TVar};
    ///
    /// let rt = TmRuntime::new();
    /// let inbox: TVar<Option<u32>> = TVar::new(None);
    /// let got = rt.run_or_else(
    ///     |tx| match tx.read(&inbox)? {
    ///         Some(v) => Ok(v),
    ///         None => tx.retry(),
    ///     },
    ///     |_tx| Ok(0), // default when the inbox is empty
    /// );
    /// assert_eq!(got, 0);
    /// ```
    pub fn run_or_else<T>(
        &self,
        mut first: impl FnMut(&mut Tx<'_>) -> TxResult<T>,
        mut second: impl FnMut(&mut Tx<'_>) -> TxResult<T>,
    ) -> T {
        self.run(move |tx| {
            let first = &mut first;
            let second = &mut second;
            tx.or_else(|tx| first(tx), |tx| second(tx))
        })
    }

    /// Runs `body` as a **lock-free read-only transaction**, restarting it
    /// on snapshot invalidation until it observes a consistent snapshot,
    /// and returns its result.
    ///
    /// The body receives a [`ReadTx`]: a reader that snapshots the global
    /// clock once, reads versioned cells through the lock-free
    /// `ValueCell::load` path and revalidates per read. Compared to
    /// [`run`](TmRuntime::run) with a non-writing body, `read_only` skips
    /// everything writer-facing:
    ///
    /// * **zero orec writes** — it never locks a stripe, so it can never
    ///   conflict with, delay, kill or be killed by a writer;
    /// * **zero commit ticket** — the global clock is read, never ticked;
    /// * **zero waitlist registration** — there is no retry/blocking
    ///   support; a read-only body that cannot proceed should return its
    ///   "not ready" answer and let the caller decide;
    /// * **invisible to the scheduler** — the single
    ///   `before_start`/`on_commit` hook pair fires with
    ///   [`TxnKind::ReadOnly`], which Shrink/ATS/Serializer treat as "skip
    ///   conflict bookkeeping", and internal restarts fire no hooks at all.
    ///
    /// Restarts are accounted as `ro_revalidations` (never as aborts) in
    /// [`stats`](TmRuntime::stats); completions as `ro_commits`.
    ///
    /// The body may run many times; it must be idempotent apart from its
    /// reads. Like [`run`](TmRuntime::run), `read_only` retries without
    /// bound: a body that can never observe a consistent snapshot (an
    /// unconditional [`ReadTx::restart`], or a very long scan under a
    /// saturating writer stream) livelocks here — use
    /// [`read_only_budgeted`](TmRuntime::read_only_budgeted) to cap the
    /// attempts instead.
    ///
    /// # Examples
    ///
    /// ```
    /// use shrink_stm::{TmRuntime, TVar};
    ///
    /// let rt = TmRuntime::new();
    /// let a = TVar::new(3u64);
    /// let b = TVar::new(4u64);
    /// let sum = rt.read_only(|tx| Ok(tx.read(&a)? + tx.read(&b)?));
    /// assert_eq!(sum, 7);
    /// let stats = rt.stats();
    /// assert_eq!(stats.ro_commits, 1);
    /// assert_eq!(stats.commits, 0, "read-only is not a commit");
    /// ```
    pub fn read_only<T>(&self, body: impl FnMut(&mut ReadTx<'_>) -> TxResult<T>) -> T {
        match self.read_only_attempts(u64::MAX, body) {
            Ok(v) => v,
            Err(err @ TmError::ForeignTVar { .. }) => panic!("{err}"),
            Err(_) => unreachable!("unbounded retries cannot be exhausted"),
        }
    }

    /// Runs `body` as a read-only transaction like
    /// [`read_only`](TmRuntime::read_only) but gives up after
    /// `max_attempts` attempts — the read-only analogue of
    /// [`run_budgeted`](TmRuntime::run_budgeted).
    ///
    /// # Errors
    ///
    /// Returns [`TmError::RetryLimitExceeded`] if no attempt observed a
    /// consistent snapshot, or [`TmError::ForeignTVar`] if the body read a
    /// `TVar` bound to a different runtime.
    pub fn read_only_budgeted<T>(
        &self,
        max_attempts: u64,
        body: impl FnMut(&mut ReadTx<'_>) -> TxResult<T>,
    ) -> Result<T, TmError> {
        self.read_only_attempts(max_attempts, body)
    }

    fn read_only_attempts<T>(
        &self,
        max_attempts: u64,
        mut body: impl FnMut(&mut ReadTx<'_>) -> TxResult<T>,
    ) -> Result<T, TmError> {
        let ctx = self.current_ctx();
        let inner = &*self.inner;
        // One bracket per read-only transaction, kind-tagged: internal
        // snapshot restarts are invisible to the scheduler. The guard turns
        // every abnormal exit (body panic, foreign access, exhausted
        // budget) into an `on_reset`, so the bracket opened by
        // `before_start` below is always closed.
        let guard = AttemptGuard::new(inner, &ctx, TxnKind::ReadOnly);
        inner.scheduler.before_start(&guard.sched_ctx());
        let mut attempts: u64 = 0;
        let mut restarts: u32 = 0;
        loop {
            attempts += 1;
            let mut tx = ReadTx::begin(inner, ctx.id());
            let outcome = body(&mut tx);
            let (reads, revalidations) = tx.counters();
            ctx.ro_reads.fetch_add(reads, Ordering::Relaxed);
            ctx.ro_revalidations
                .fetch_add(revalidations, Ordering::Relaxed);
            match outcome {
                Ok(value) => {
                    ctx.ro_commits.fetch_add(1, Ordering::Relaxed);
                    inner.scheduler.on_commit(&guard.sched_ctx(), &[], &[]);
                    guard.complete();
                    return Ok(value);
                }
                Err(abort) if abort.reason() == AbortReason::ForeignTVar => {
                    let info = tx.foreign_access().expect("foreign abort carries details");
                    // Not retryable: a fresh snapshot cannot change which
                    // runtime owns the variable. The guard fires on_reset.
                    return Err(TmError::ForeignTVar {
                        var: info.var,
                        owner: info.owner,
                        runtime: inner.id,
                    });
                }
                Err(_) => {
                    // A concurrent writer invalidated the snapshot (or the
                    // body asked to restart). Not an abort — no lock was
                    // held, no writer was harmed. Grant the writer a short
                    // pause, then re-run on a fresh snapshot.
                    ctx.ro_revalidations.fetch_add(1, Ordering::Relaxed);
                    if attempts >= max_attempts {
                        return Err(TmError::RetryLimitExceeded { attempts });
                    }
                    restarts = restarts.saturating_add(1);
                    pause(inner.config.wait_policy, restarts);
                }
            }
        }
    }

    /// Runs `body` until it either commits or deliberately blocks — the
    /// building block of the cross-runtime select
    /// ([`registry::retry_select`](crate::registry::retry_select)).
    ///
    /// Identical to one iteration class of [`run_attempts`]: conflict
    /// aborts re-run internally with the usual backoff and every scheduler
    /// hook fires exactly as in [`run`](TmRuntime::run). The difference is
    /// the `Retry` branch: instead of parking on this runtime's waitlist,
    /// the rolled-back attempt's wait plan is handed to the caller, who
    /// parks one parker across *several* runtimes' waitlists.
    ///
    /// [`run_attempts`]: TmRuntime::run_attempts
    pub(crate) fn run_until_block<T>(
        &self,
        body: &mut dyn FnMut(&mut Tx<'_>) -> TxResult<T>,
    ) -> Result<BlockOutcome<T>, TmError> {
        let ctx = self.current_ctx();
        let inner = &*self.inner;
        let mut consecutive_aborts: u32 = 0;
        loop {
            let guard = AttemptGuard::new(inner, &ctx, TxnKind::ReadWrite);
            inner.scheduler.before_start(&guard.sched_ctx());
            let _ = crate::failpoint!(FaultSite::SchedBeforeStart);
            let mut tx = Tx::begin(inner, &ctx);
            let committed = match body(&mut tx) {
                Ok(value) => tx.try_commit().map(|()| value),
                Err(abort) => Err(abort),
            };
            match committed {
                Ok(value) => {
                    let (reads, writes) = tx.take_logs();
                    drop(tx);
                    ctx.commits.fetch_add(1, Ordering::Relaxed);
                    inner
                        .scheduler
                        .on_commit(&guard.sched_ctx(), &reads, &writes);
                    let _ = crate::failpoint!(FaultSite::SchedOnCommit);
                    guard.complete();
                    return Ok(BlockOutcome::Committed(value));
                }
                Err(abort) if abort.reason() == AbortReason::Retry => {
                    tx.rollback();
                    let wait_plan = tx.retry_wait_plan();
                    let (reads, writes) = tx.take_logs();
                    drop(tx);
                    ctx.retry_waits.fetch_add(1, Ordering::Relaxed);
                    inner
                        .scheduler
                        .on_retry_wait(&guard.sched_ctx(), &reads, &writes);
                    let _ = crate::failpoint!(FaultSite::SchedOnRetryWait);
                    guard.complete();
                    return Ok(BlockOutcome::Blocked(wait_plan));
                }
                Err(abort) if abort.reason() == AbortReason::ForeignTVar => {
                    tx.rollback();
                    let info = tx.foreign_access().expect("foreign abort carries details");
                    drop(tx);
                    return Err(TmError::ForeignTVar {
                        var: info.var,
                        owner: info.owner,
                        runtime: inner.id,
                    });
                }
                Err(abort) => {
                    tx.rollback();
                    let (reads, writes) = tx.take_logs();
                    drop(tx);
                    ctx.aborts.fetch_add(1, Ordering::Relaxed);
                    inner
                        .scheduler
                        .on_abort(&guard.sched_ctx(), &abort, &reads, &writes);
                    let _ = crate::failpoint!(FaultSite::SchedOnAbort);
                    guard.complete();
                    consecutive_aborts += 1;
                    retry_backoff(
                        inner.config.wait_policy,
                        consecutive_aborts,
                        inner.config.backoff_ceiling,
                        ctx.id().as_u16() as u64,
                    );
                }
            }
        }
    }

    fn run_attempts<T>(
        &self,
        max_attempts: u64,
        deadline: Option<Instant>,
        mut body: impl FnMut(&mut Tx<'_>) -> TxResult<T>,
    ) -> Result<T, TmError> {
        let ctx = self.current_ctx();
        let inner = &*self.inner;
        // Sampled only for deadline-bounded runs, to report `waited`.
        let started = deadline.map(|_| Instant::now());
        let mut consecutive_aborts: u32 = 0;
        let mut attempts: u64 = 0;
        loop {
            attempts += 1;
            // Guard first, `tx` second: on an unwind the transaction rolls
            // back (stripes released) before the guard resets the scheduler
            // and advances the attempt epoch.
            let guard = AttemptGuard::new(inner, &ctx, TxnKind::ReadWrite);
            inner.scheduler.before_start(&guard.sched_ctx());
            // Hazard probe with serialization possibly held: a panic here
            // must release it through the guard's on_reset.
            let _ = crate::failpoint!(FaultSite::SchedBeforeStart);
            let mut tx = Tx::begin(inner, &ctx);
            let committed = match body(&mut tx) {
                Ok(value) => tx.try_commit().map(|()| value),
                Err(abort) => Err(abort),
            };
            match committed {
                Ok(value) => {
                    let (reads, writes) = tx.take_logs();
                    drop(tx);
                    ctx.commits.fetch_add(1, Ordering::Relaxed);
                    inner
                        .scheduler
                        .on_commit(&guard.sched_ctx(), &reads, &writes);
                    let _ = crate::failpoint!(FaultSite::SchedOnCommit);
                    guard.complete();
                    return Ok(value);
                }
                Err(abort) if abort.reason() == AbortReason::Retry => {
                    // Deliberate blocking, not a conflict: park until a
                    // commit overwrites something the attempt read.
                    tx.rollback();
                    let wait_plan = tx.retry_wait_plan();
                    let (reads, writes) = tx.take_logs();
                    drop(tx);
                    ctx.retry_waits.fetch_add(1, Ordering::Relaxed);
                    inner
                        .scheduler
                        .on_retry_wait(&guard.sched_ctx(), &reads, &writes);
                    let _ = crate::failpoint!(FaultSite::SchedOnRetryWait);
                    guard.complete();
                    if attempts >= max_attempts {
                        return Err(TmError::RetryLimitExceeded { attempts });
                    }
                    let round = Instant::now() + inner.config.retry_wait;
                    // A deadline-bounded run never parks past its deadline;
                    // once the deadline passed the wait degenerates to one
                    // registration-and-revalidate pass.
                    let bound = deadline.map_or(round, |d| round.min(d));
                    let outcome =
                        inner
                            .retry_waits
                            .wait(&inner.orecs, &wait_plan, &ctx.retry_parker, bound);
                    if let Some(d) = deadline {
                        // A real wake (or a changed read set) earns one more
                        // attempt even at the deadline; only an expired wait
                        // with nothing new gives up.
                        if outcome == crate::waitlist::RetryWaitOutcome::TimedOut
                            && Instant::now() >= d
                        {
                            return Err(TmError::RetryTimeout {
                                waited: started.expect("deadline implies start").elapsed(),
                            });
                        }
                    }
                    // Waking (or revalidating after the bounded deadline)
                    // is progress, not an abort storm: no backoff.
                    consecutive_aborts = 0;
                }
                Err(abort) if abort.reason() == AbortReason::ForeignTVar => {
                    tx.rollback();
                    let info = tx.foreign_access().expect("foreign abort carries details");
                    drop(tx);
                    // Not retryable, and not a conflict either: no abort is
                    // booked and no completion hook fires — the guard's
                    // on_reset closes the scheduler bracket.
                    return Err(TmError::ForeignTVar {
                        var: info.var,
                        owner: info.owner,
                        runtime: inner.id,
                    });
                }
                Err(abort) => {
                    tx.rollback();
                    let (reads, writes) = tx.take_logs();
                    drop(tx);
                    ctx.aborts.fetch_add(1, Ordering::Relaxed);
                    inner
                        .scheduler
                        .on_abort(&guard.sched_ctx(), &abort, &reads, &writes);
                    let _ = crate::failpoint!(FaultSite::SchedOnAbort);
                    guard.complete();
                    if attempts >= max_attempts {
                        return Err(TmError::RetryLimitExceeded { attempts });
                    }
                    consecutive_aborts += 1;
                    retry_backoff(
                        inner.config.wait_policy,
                        consecutive_aborts,
                        inner.config.backoff_ceiling,
                        ctx.id().as_u16() as u64,
                    );
                }
            }
        }
    }

    /// Takes a statistics snapshot over all registered threads.
    pub fn stats(&self) -> TmStats {
        let per_thread = self
            .inner
            .registry
            .snapshot()
            .iter()
            .map(|ctx| ThreadStats {
                thread: ctx.id(),
                commits: ctx.commit_count(),
                aborts: ctx.abort_count(),
                retry_waits: ctx.retry_wait_count(),
                ro_commits: ctx.ro_commit_count(),
                ro_reads: ctx.ro_read_count(),
                ro_revalidations: ctx.ro_revalidation_count(),
                orec_acquires: ctx.orec_acquire_count(),
            })
            .collect();
        TmStats::from_threads(per_thread)
    }

    /// Wait-op counters of the [`Tx::retry`] wake path: how blocked
    /// transactions waited (parked, woken, timed out) and what the commit
    /// side paid (wakes issued, wasted wakes). The parked path has no
    /// yield-poll counterpart at all — these counters are the proof.
    pub fn retry_stats(&self) -> RetryStats {
        self.inner.retry_waits.stats()
    }

    /// Number of parkers currently registered on the retry waitlist —
    /// thread and task parkers combined, counted once per watched bucket.
    ///
    /// Transient non-zero values are normal while transactions block; the
    /// count returns to zero once every blocked transaction has been woken,
    /// timed out, or (for futures) dropped. Tests use it to prove that a
    /// cancelled [`TxFuture`](crate::future::TxFuture) leaked no slot.
    pub fn retry_waiters(&self) -> u64 {
        self.inner.retry_waits.registered()
    }
}

impl Default for TmRuntime {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs `body` as a transaction on `rt`, retrying until it commits — the
/// Haskell-STM spelling of [`TmRuntime::run`], for bodies written in the
/// composable [`Tx::retry`] / [`Tx::or_else`] style.
///
/// # Examples
///
/// ```
/// use shrink_stm::{atomically, TmRuntime, TVar};
///
/// let rt = TmRuntime::new();
/// let v = TVar::new(41u32);
/// atomically(&rt, |tx| tx.modify(&v, |x| x + 1));
/// assert_eq!(v.snapshot(), 42);
/// ```
pub fn atomically<T>(rt: &TmRuntime, body: impl FnMut(&mut Tx<'_>) -> TxResult<T>) -> T {
    rt.run(body)
}

/// Drains deferred epoch garbage at a quiescent point.
///
/// Boxed `TVar` values replaced at commit are not freed immediately — their
/// destruction is deferred until every reader pinned at the time of
/// replacement has moved on (see DESIGN.md §7). Reclamation normally runs
/// piggybacked on the read path; call this from a thread that holds no
/// transaction when you need the backlog drained *now* — after joining
/// worker threads, between benchmark phases, or in tests asserting exact
/// drop counts. The epoch collector is process-global, not per-runtime.
///
/// Each call seals the calling thread's deferral bag and attempts a bounded
/// number of epoch advances; when no thread is pinned, everything retired
/// before the call has been dropped by the time it returns.
pub fn quiesce() {
    // Two epoch advances make any previously sealed bag eligible; a few
    // extra rounds cover bags sealed concurrently by exiting threads.
    for _ in 0..4 {
        crossbeam::epoch::flush();
    }
}

impl fmt::Debug for TmRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TmRuntime")
            .field("id", &self.inner.id)
            .field("backend", &self.inner.config.backend)
            .field("wait_policy", &self.inner.config.wait_policy)
            .field("scheduler", &self.inner.scheduler.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tvar::TVar;

    #[test]
    fn single_threaded_counter() {
        let rt = TmRuntime::new();
        let v = TVar::new(0u64);
        for _ in 0..100 {
            rt.run(|tx| tx.modify(&v, |x| x + 1));
        }
        assert_eq!(v.snapshot(), 100);
        let stats = rt.stats();
        assert_eq!(stats.commits, 100);
        assert_eq!(stats.aborts, 0);
    }

    #[test]
    fn read_own_write() {
        let rt = TmRuntime::new();
        let v = TVar::new(1u64);
        let seen = rt.run(|tx| {
            tx.write(&v, 7)?;
            tx.read(&v)
        });
        assert_eq!(seen, 7);
        assert_eq!(v.snapshot(), 7);
    }

    #[test]
    fn writes_are_buffered_until_commit() {
        let rt = TmRuntime::new();
        let v = TVar::new(1u64);
        rt.run(|tx| {
            tx.write(&v, 99)?;
            // Not yet installed: snapshot still sees the old value.
            assert_eq!(v.snapshot(), 1);
            Ok(())
        });
        assert_eq!(v.snapshot(), 99);
    }

    #[test]
    fn user_restart_retries() {
        let rt = TmRuntime::new();
        let v = TVar::new(0u32);
        let mut first = true;
        rt.run(|tx| {
            if first {
                first = false;
                return tx.restart();
            }
            tx.write(&v, 5)
        });
        assert_eq!(v.snapshot(), 5);
        assert_eq!(rt.stats().aborts, 1);
    }

    #[test]
    fn budgeted_run_gives_up() {
        let rt = TmRuntime::new();
        let result: Result<(), _> = rt.run_budgeted(3, |tx| tx.restart());
        assert_eq!(result, Err(TmError::RetryLimitExceeded { attempts: 3 }));
    }

    #[test]
    fn budgeted_read_only_gives_up() {
        let rt = TmRuntime::new();
        let result: Result<(), _> = rt.read_only_budgeted(3, |tx| tx.restart());
        assert_eq!(result, Err(TmError::RetryLimitExceeded { attempts: 3 }));
        let stats = rt.stats();
        assert_eq!(stats.aborts, 0, "read-only restarts are not aborts");
        assert_eq!(stats.ro_commits, 0);
    }

    #[test]
    fn budgeted_read_only_succeeds_within_budget() {
        let rt = TmRuntime::new();
        let v = TVar::new(11u64);
        let mut first = true;
        let got = rt.read_only_budgeted(2, |tx| {
            if first {
                first = false;
                return tx.restart();
            }
            tx.read(&v)
        });
        assert_eq!(got, Ok(11));
        assert_eq!(rt.stats().ro_commits, 1);
    }

    #[test]
    fn retry_blocks_until_a_commit_changes_the_read_set() {
        let rt = TmRuntime::new();
        let v = TVar::new(0u64);
        let consumer = {
            let rt = rt.clone();
            let v = v.clone();
            std::thread::spawn(move || {
                rt.run(|tx| {
                    let x = tx.read(&v)?;
                    if x == 0 {
                        return tx.retry();
                    }
                    Ok(x)
                })
            })
        };
        // Deterministic handshake: wait until the consumer is provably
        // parked (a stats-visible retry round), then publish.
        while rt.retry_stats().parked_waits == 0 {
            std::thread::yield_now();
        }
        rt.run(|tx| tx.write(&v, 7));
        assert_eq!(consumer.join().unwrap(), 7);
        let stats = rt.stats();
        assert!(stats.retry_waits >= 1, "the wait rounds are accounted");
        assert_eq!(
            stats.aborts, 0,
            "a deliberate retry must not count as a conflict abort"
        );
        let wait_stats = rt.retry_stats();
        assert!(wait_stats.parked_waits >= 1);
        assert!(
            wait_stats.woken >= 1,
            "the producer's commit must wake the parked consumer: {wait_stats:?}"
        );
    }

    #[test]
    fn budgeted_run_bounds_a_permanently_blocked_retry() {
        let rt = TmRuntime::builder()
            .retry_wait(std::time::Duration::from_millis(1))
            .build();
        let v = TVar::new(0u64);
        let result: Result<(), _> = rt.run_budgeted(3, |tx| {
            let _ = tx.read(&v)?;
            tx.retry()
        });
        assert_eq!(result, Err(TmError::RetryLimitExceeded { attempts: 3 }));
    }

    #[test]
    fn run_or_else_takes_the_fallback_when_first_retries() {
        let rt = TmRuntime::new();
        let a: TVar<Option<u32>> = TVar::new(None);
        let b: TVar<Option<u32>> = TVar::new(Some(5));
        let got = rt.run_or_else(
            |tx| match tx.read(&a)? {
                Some(v) => Ok(v),
                None => tx.retry(),
            },
            |tx| match tx.read(&b)? {
                Some(v) => Ok(v),
                None => tx.retry(),
            },
        );
        assert_eq!(got, 5);
        assert_eq!(rt.stats().retry_waits, 0, "or_else caught the retry");
    }

    #[test]
    fn atomically_is_run() {
        let rt = TmRuntime::new();
        let v = TVar::new(1u32);
        let got = atomically(&rt, |tx| tx.modify(&v, |x| x * 2).map(|()| 0));
        assert_eq!(got, 0);
        assert_eq!(v.snapshot(), 2);
    }

    #[test]
    fn retry_releases_branch_locks_before_parking() {
        // A transaction that wrote (acquiring a stripe) and then retried
        // must not park while holding the stripe: another thread writing
        // the same variable is exactly what will wake it.
        let rt = TmRuntime::builder()
            .retry_wait(std::time::Duration::from_secs(30))
            .build();
        let gate = TVar::new(false);
        let target = TVar::new(0u64);
        let blocked = {
            let rt = rt.clone();
            let gate = gate.clone();
            let target = target.clone();
            std::thread::spawn(move || {
                rt.run(|tx| {
                    tx.write(&target, 99)?;
                    if !tx.read(&gate)? {
                        return tx.retry();
                    }
                    Ok(())
                })
            })
        };
        while rt.retry_stats().parked_waits == 0 {
            std::thread::yield_now();
        }
        // The stripe must be free: this write succeeds without conflict and
        // (also writing `gate`'s stripe set) wakes the parked thread.
        rt.run(|tx| {
            tx.write(&target, 1)?;
            tx.write(&gate, true)
        });
        blocked.join().unwrap();
        assert_eq!(target.snapshot(), 99, "retried write re-ran and won");
    }

    #[test]
    fn multithreaded_transfer_conserves_money_swiss() {
        transfer_conserves_money(BackendKind::Swiss, WaitPolicy::Preemptive);
    }

    #[test]
    fn multithreaded_transfer_conserves_money_tiny() {
        transfer_conserves_money(BackendKind::Tiny, WaitPolicy::Preemptive);
    }

    fn transfer_conserves_money(backend: BackendKind, wait: WaitPolicy) {
        const ACCOUNTS: usize = 8;
        const THREADS: usize = 4;
        const TRANSFERS: usize = 500;
        let rt = TmRuntime::builder()
            .backend(backend)
            .wait_policy(wait)
            .build();
        let accounts: Vec<TVar<i64>> = (0..ACCOUNTS).map(|_| TVar::new(1000)).collect();
        let accounts = Arc::new(accounts);
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let rt = rt.clone();
                let accounts = Arc::clone(&accounts);
                std::thread::spawn(move || {
                    let mut s = t as u64 + 1;
                    for _ in 0..TRANSFERS {
                        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let from = (s >> 33) as usize % ACCOUNTS;
                        let to = (s >> 17) as usize % ACCOUNTS;
                        if from == to {
                            continue;
                        }
                        rt.run(|tx| {
                            let a = tx.read(&accounts[from])?;
                            let b = tx.read(&accounts[to])?;
                            tx.write(&accounts[from], a - 1)?;
                            tx.write(&accounts[to], b + 1)
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total: i64 = accounts.iter().map(|a| a.snapshot()).sum();
        assert_eq!(total, ACCOUNTS as i64 * 1000, "money must be conserved");
    }

    #[test]
    fn read_only_observes_committed_state_without_orec_writes() {
        let rt = TmRuntime::new();
        let vars: Vec<TVar<u64>> = (0..8).map(TVar::new).collect();
        let sum = rt.read_only(|tx| {
            let mut total = 0;
            for v in &vars {
                total += tx.read(v)?;
            }
            Ok(total)
        });
        assert_eq!(sum, 28);
        let stats = rt.stats();
        assert_eq!(stats.ro_commits, 1);
        assert_eq!(stats.ro_reads, 8);
        assert_eq!(stats.commits, 0, "no commit ticket was taken");
        assert_eq!(stats.aborts, 0);
        assert_eq!(stats.orec_acquires, 0, "lock-free: zero orec writes");
        assert_eq!(
            rt.retry_stats().parked_waits,
            0,
            "zero waitlist registration"
        );
    }

    #[test]
    fn read_only_interleaves_with_writers_on_one_thread() {
        let rt = TmRuntime::new();
        let v = TVar::new(0u64);
        for round in 1..=10u64 {
            rt.run(|tx| tx.write(&v, round));
            let seen = rt.read_only(|tx| tx.read(&v));
            assert_eq!(seen, round);
        }
        let stats = rt.stats();
        assert_eq!(stats.commits, 10);
        assert_eq!(stats.ro_commits, 10);
    }

    #[test]
    fn read_only_restart_is_a_revalidation_not_an_abort() {
        let rt = TmRuntime::new();
        let v = TVar::new(7u64);
        let mut first = true;
        let got = rt.read_only(|tx| {
            if first {
                first = false;
                return tx.restart();
            }
            tx.read(&v)
        });
        assert_eq!(got, 7);
        let stats = rt.stats();
        assert_eq!(stats.ro_commits, 1);
        assert!(stats.ro_revalidations >= 1, "the restart is accounted");
        assert_eq!(stats.aborts, 0, "restarts never masquerade as conflicts");
    }

    #[test]
    fn read_only_reads_through_a_held_write_lock() {
        // A writer that holds the stripe but has not begun committing must
        // not delay a read-only reader: buffered writes leave the committed
        // value in the cell. Exercised on both backends — the read-only
        // path reads through non-committing locks regardless of backend.
        for backend in [BackendKind::Swiss, BackendKind::Tiny] {
            let rt = TmRuntime::builder().backend(backend).build();
            let v = TVar::new(1u64);
            rt.run(|tx| {
                tx.write(&v, 2)?;
                // Stripe is locked by this thread right now; the read-only
                // snapshot still sees the committed value instantly.
                let seen = rt.read_only(|ro| ro.read(&v));
                assert_eq!(seen, 1, "buffered write must not leak ({backend})");
                Ok(())
            });
            assert_eq!(v.snapshot(), 2);
            assert_eq!(rt.stats().ro_commits, 1);
        }
    }

    #[test]
    fn stats_count_both_threads() {
        let rt = TmRuntime::new();
        let v = TVar::new(0u64);
        let t = {
            let rt = rt.clone();
            let v = v.clone();
            std::thread::spawn(move || rt.run(|tx| tx.modify(&v, |x| x + 1)))
        };
        t.join().unwrap();
        rt.run(|tx| tx.modify(&v, |x| x + 1));
        let stats = rt.stats();
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.per_thread.len(), 2);
    }

    #[test]
    fn panicking_body_releases_locks() {
        let rt = TmRuntime::new();
        let v = TVar::new(0u64);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rt.run(|tx| {
                tx.write(&v, 1)?;
                panic!("boom");
                #[allow(unreachable_code)]
                Ok(())
            })
        }));
        assert!(result.is_err());
        // The stripe must be free again: another transaction can write it.
        rt.run(|tx| tx.write(&v, 2));
        assert_eq!(v.snapshot(), 2);
    }

    #[test]
    fn exited_threads_are_retired_from_the_epoch_oracle() {
        use crate::epoch::{AttemptEpochs, EpochWaitOutcome};
        use crate::thread::ThreadId;

        let rt = TmRuntime::new();
        let v = TVar::new(0u64);
        // Main thread registers first → id 1; the worker gets id 2.
        rt.run(|tx| tx.modify(&v, |x| x + 1));
        let worker = {
            let rt = rt.clone();
            let v = v.clone();
            std::thread::spawn(move || rt.run(|tx| tx.modify(&v, |x| x + 1)))
        };
        worker.join().unwrap();
        let worker_id = ThreadId::from_u16(2);
        // The joined worker's registration guard has retired it: the oracle
        // reports it absent and refuses to wait on it.
        assert_eq!(rt.inner.registry.epoch_of(worker_id), None);
        let outcome = rt.inner.registry.wait_epoch_change(
            worker_id,
            0,
            std::time::Instant::now() + std::time::Duration::from_secs(5),
        );
        assert_eq!(outcome, EpochWaitOutcome::Absent, "must not stall");
        // The live main thread still has an epoch (one finished attempt).
        assert_eq!(rt.inner.registry.epoch_of(ThreadId::from_u16(1)), Some(1));
    }

    #[test]
    fn foreign_tvar_access_is_a_typed_error() {
        let rt1 = TmRuntime::new();
        let rt2 = TmRuntime::new();
        let v = TVar::new(0u64);
        // First transactional access binds the TVar to rt1.
        rt1.run(|tx| tx.write(&v, 1));
        assert_eq!(v.owner_runtime(), Some(rt1.id()));
        // Reads and writes through another runtime are refused, not
        // silently mis-synchronized.
        let read: Result<u64, _> = rt2.run_budgeted(8, |tx| tx.read(&v));
        match read {
            Err(TmError::ForeignTVar {
                var,
                owner,
                runtime,
            }) => {
                assert_eq!(var, v.id());
                assert_eq!(owner, rt1.id());
                assert_eq!(runtime, rt2.id());
            }
            other => panic!("expected ForeignTVar, got {other:?}"),
        }
        let write: Result<(), _> = rt2.run_budgeted(8, |tx| tx.write(&v, 9));
        assert!(matches!(write, Err(TmError::ForeignTVar { .. })));
        let ro: Result<u64, _> = rt2.read_only_budgeted(8, |tx| tx.read(&v));
        assert!(matches!(ro, Err(TmError::ForeignTVar { .. })));
        // The owning runtime is unaffected and keeps working.
        rt1.run(|tx| tx.modify(&v, |x| x + 1));
        assert_eq!(v.snapshot(), 2);
        assert_eq!(rt2.stats().commits, 0, "rt2 never committed");
        // Non-transactional snapshots stay runtime-free.
        assert_eq!(v.snapshot(), 2);
    }

    #[test]
    fn foreign_tvar_does_not_burn_the_retry_budget() {
        // A foreign access is non-retryable: it must return on the first
        // attempt, not spin the budget down.
        let rt1 = TmRuntime::new();
        let rt2 = TmRuntime::new();
        let v = TVar::new(0u64);
        rt1.run(|tx| tx.write(&v, 1));
        let _: Result<u64, _> = rt2.run_budgeted(1_000_000, |tx| tx.read(&v));
        assert_eq!(rt2.stats().aborts, 0, "foreign access is not an abort");
    }

    #[test]
    fn run_with_deadline_times_out_a_blocked_retry() {
        let rt = TmRuntime::builder()
            .retry_wait(std::time::Duration::from_secs(30))
            .build();
        let v = TVar::new(0u64);
        let start = std::time::Instant::now();
        let deadline = start + std::time::Duration::from_millis(50);
        let got: Result<u64, _> = rt.run_with_deadline(deadline, |tx| {
            let x = tx.read(&v)?;
            if x == 0 {
                return tx.retry();
            }
            Ok(x)
        });
        match got {
            Err(TmError::RetryTimeout { waited }) => {
                assert!(waited >= std::time::Duration::from_millis(50));
            }
            other => panic!("expected RetryTimeout, got {other:?}"),
        }
        // The deadline clamps the 30s retry_wait round: we did not sleep
        // anywhere near the configured round length.
        assert!(start.elapsed() < std::time::Duration::from_secs(10));
    }

    #[test]
    fn run_with_deadline_returns_a_value_that_arrives_in_time() {
        let rt = TmRuntime::new();
        let v = TVar::new(0u64);
        let producer = {
            let rt = rt.clone();
            let v = v.clone();
            std::thread::spawn(move || {
                while rt.retry_stats().parked_waits == 0 {
                    std::thread::yield_now();
                }
                rt.run(|tx| tx.write(&v, 7));
            })
        };
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        let got = rt.run_with_deadline(deadline, |tx| {
            let x = tx.read(&v)?;
            if x == 0 {
                return tx.retry();
            }
            Ok(x)
        });
        producer.join().unwrap();
        assert_eq!(got, Ok(7));
    }

    #[test]
    fn runtime_is_reusable_after_a_panicking_body() {
        // The tested guarantee that replaced the old "fatal for the
        // runtime" caveat: after a panic unwinds out of `run`, the same
        // runtime keeps committing on the same thread, the epoch advanced
        // (nobody stalls serialized behind the dead attempt), and stats
        // keep flowing.
        use crate::epoch::AttemptEpochs;
        use crate::thread::ThreadId;

        let rt = TmRuntime::new();
        let v = TVar::new(0u64);
        rt.run(|tx| tx.modify(&v, |x| x + 1));
        let epoch_before = rt.inner.registry.epoch_of(ThreadId::from_u16(1));
        for _ in 0..3 {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                rt.run(|tx| {
                    tx.write(&v, 99)?;
                    panic!("boom");
                    #[allow(unreachable_code)]
                    Ok(())
                })
            }));
            assert!(result.is_err());
        }
        let epoch_after = rt.inner.registry.epoch_of(ThreadId::from_u16(1));
        assert!(
            epoch_after > epoch_before,
            "abandoned attempts must advance the epoch: {epoch_before:?} -> {epoch_after:?}"
        );
        rt.run(|tx| tx.modify(&v, |x| x + 1));
        assert_eq!(v.snapshot(), 2, "panicked writes rolled back");
        assert_eq!(rt.stats().commits, 2);
    }
}
