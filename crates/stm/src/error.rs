//! Transaction failure types.
//!
//! A transaction body has the signature `FnMut(&mut Tx) -> Result<T, Abort>`;
//! any transactional operation can fail with [`Abort`], which the `?`
//! operator propagates out of the body so the runtime's retry loop can
//! restart the attempt. An `Abort` is not a user-visible error of
//! [`TmRuntime::run`](crate::TmRuntime::run) — it is consumed by the retry
//! loop — but it is part of the public API because bodies must thread it.

use std::error::Error;
use std::fmt;

use crate::thread::ThreadId;
use crate::varid::VarId;

/// Why a transaction attempt must be restarted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// A read observed a version newer than the snapshot and the snapshot
    /// could not be extended.
    ReadValidation,
    /// Commit-time validation of the read set failed.
    CommitValidation,
    /// A write/write conflict was resolved against this transaction.
    WriteConflict,
    /// The spin budget for a locked ownership record was exhausted.
    LockTimeout,
    /// A higher-priority transaction requested this one be killed
    /// (SwissTM-style two-phase contention management).
    Killed,
    /// The transaction body requested a restart via [`Tx::restart`](crate::Tx::restart).
    UserRestart,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::ReadValidation => "read validation failed",
            AbortReason::CommitValidation => "commit validation failed",
            AbortReason::WriteConflict => "write/write conflict",
            AbortReason::LockTimeout => "lock wait budget exhausted",
            AbortReason::Killed => "killed by contention manager",
            AbortReason::UserRestart => "restart requested by transaction body",
        };
        f.write_str(s)
    }
}

/// A request to abort and retry the current transaction attempt.
///
/// Carries the reason plus, when known, the variable and the competing
/// thread involved in the conflict. Schedulers receive this information
/// through the [`TxScheduler::on_abort`](crate::sched::TxScheduler::on_abort)
/// hook.
///
/// # Examples
///
/// ```
/// use shrink_stm::{Abort, AbortReason};
///
/// let a = Abort::new(AbortReason::WriteConflict);
/// assert_eq!(a.reason(), AbortReason::WriteConflict);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Abort {
    reason: AbortReason,
    var: Option<VarId>,
    enemy: Option<ThreadId>,
}

impl Abort {
    /// Creates an abort with no conflict details.
    pub fn new(reason: AbortReason) -> Self {
        Abort {
            reason,
            var: None,
            enemy: None,
        }
    }

    /// Creates an abort attributed to a conflict on `var` with `enemy`.
    pub fn on_conflict(reason: AbortReason, var: VarId, enemy: ThreadId) -> Self {
        Abort {
            reason,
            var: Some(var),
            enemy: Some(enemy),
        }
    }

    /// The cause of the abort.
    pub fn reason(&self) -> AbortReason {
        self.reason
    }

    /// The variable on which the conflict occurred, if known.
    pub fn var(&self) -> Option<VarId> {
        self.var
    }

    /// The thread this transaction lost against, if known.
    pub fn enemy(&self) -> Option<ThreadId> {
        self.enemy
    }
}

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction aborted: {}", self.reason)?;
        if let Some(v) = self.var {
            write!(f, " on {v}")?;
        }
        if let Some(t) = self.enemy {
            write!(f, " against {t}")?;
        }
        Ok(())
    }
}

impl Error for Abort {}

/// Result alias used by transaction bodies.
pub type TxResult<T> = Result<T, Abort>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_conflict_details() {
        let a = Abort::on_conflict(
            AbortReason::WriteConflict,
            VarId::from_u64(9),
            ThreadId::from_raw(3),
        );
        let s = a.to_string();
        assert!(s.contains("write/write conflict"), "{s}");
        assert!(s.contains("v9"), "{s}");
        assert!(s.contains("t3"), "{s}");
    }

    #[test]
    fn plain_abort_has_no_details() {
        let a = Abort::new(AbortReason::Killed);
        assert!(a.var().is_none());
        assert!(a.enemy().is_none());
        assert_eq!(
            a.to_string(),
            "transaction aborted: killed by contention manager"
        );
    }

    #[test]
    fn abort_is_a_std_error() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(Abort::new(AbortReason::ReadValidation));
    }
}
