//! Transaction failure types.
//!
//! A transaction body has the signature `FnMut(&mut Tx) -> Result<T, Abort>`;
//! any transactional operation can fail with [`Abort`], which the `?`
//! operator propagates out of the body so the runtime's retry loop can
//! restart the attempt. An `Abort` is not a user-visible error of
//! [`TmRuntime::run`](crate::TmRuntime::run) — it is consumed by the retry
//! loop — but it is part of the public API because bodies must thread it.

use std::error::Error;
use std::fmt;

use crate::thread::ThreadId;
use crate::varid::VarId;

/// Why a transaction attempt must be restarted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// A read observed a version newer than the snapshot and the snapshot
    /// could not be extended.
    ReadValidation,
    /// Commit-time validation of the read set failed.
    CommitValidation,
    /// A write/write conflict was resolved against this transaction.
    WriteConflict,
    /// The spin budget for a locked ownership record was exhausted.
    LockTimeout,
    /// A higher-priority transaction requested this one be killed
    /// (SwissTM-style two-phase contention management).
    Killed,
    /// The transaction body requested a restart via [`Tx::restart`](crate::Tx::restart).
    UserRestart,
    /// The transaction body called [`Tx::retry`](crate::Tx::retry): the
    /// current snapshot does not let it proceed (a queue was empty, a
    /// predicate was false). Unlike every other reason this is *control
    /// flow*, not a conflict: [`Tx::or_else`](crate::Tx::or_else) catches it
    /// to run an alternative branch, and the runtime's retry loop **parks**
    /// the thread on the per-stripe commit event counts of its read set
    /// instead of spinning the attempt again (DESIGN.md §9). Schedulers see
    /// it through [`on_retry_wait`](crate::sched::TxScheduler::on_retry_wait)
    /// rather than `on_abort`, so a deliberate wait is never booked as a
    /// conflict abort.
    Retry,
    /// The body touched a [`TVar`](crate::TVar) owned by a different
    /// [`TmRuntime`](crate::TmRuntime). Not retryable: the runtime loop
    /// converts it into [`TmError::ForeignTVar`] (fallible entry points) or
    /// a panic (`run`/`read_only`) instead of restarting the attempt.
    ForeignTVar,
    /// The fault-injection layer (`faults` feature, DESIGN.md §11) forced a
    /// spurious abort at a failpoint. Never produced in default builds;
    /// handled by the retry loop exactly like a conflict abort.
    FaultInjected,
}

impl AbortReason {
    /// True for [`AbortReason::Retry`] — the control-flow variant
    /// [`Tx::or_else`](crate::Tx::or_else) catches and the runtime parks on.
    pub fn is_retry(self) -> bool {
        self == AbortReason::Retry
    }
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AbortReason::ReadValidation => "read validation failed",
            AbortReason::CommitValidation => "commit validation failed",
            AbortReason::WriteConflict => "write/write conflict",
            AbortReason::LockTimeout => "lock wait budget exhausted",
            AbortReason::Killed => "killed by contention manager",
            AbortReason::UserRestart => "restart requested by transaction body",
            AbortReason::Retry => "retry: blocked until the read set changes",
            AbortReason::ForeignTVar => "TVar belongs to a different runtime",
            AbortReason::FaultInjected => "spurious abort forced by fault injection",
        };
        f.write_str(s)
    }
}

/// A request to abort and retry the current transaction attempt.
///
/// Carries the reason plus, when known, the variable, the competing thread,
/// and the competing thread's *attempt epoch sampled while the conflict was
/// live*. Schedulers receive this information through the
/// [`TxScheduler::on_abort`](crate::sched::TxScheduler::on_abort) hook.
///
/// The epoch matters for schedule-after-conflict policies: by the time
/// `on_abort` runs (after rollback and log extraction), a fast enemy may
/// already have committed the conflicting transaction and be deep into its
/// next one. A scheduler that sampled the enemy's epoch *then* would make
/// the victim wait behind the wrong transaction; the conflict-time sample
/// recorded here compares against the attempt that actually won.
///
/// # Examples
///
/// ```
/// use shrink_stm::{Abort, AbortReason};
///
/// let a = Abort::new(AbortReason::WriteConflict);
/// assert_eq!(a.reason(), AbortReason::WriteConflict);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Abort {
    reason: AbortReason,
    var: Option<VarId>,
    enemy: Option<ThreadId>,
    enemy_epoch: Option<u32>,
}

impl Abort {
    /// Creates an abort with no conflict details.
    #[must_use]
    pub fn new(reason: AbortReason) -> Self {
        Abort {
            reason,
            var: None,
            enemy: None,
            enemy_epoch: None,
        }
    }

    /// The control-flow abort raised by [`Tx::retry`](crate::Tx::retry).
    #[must_use]
    pub fn retry() -> Self {
        Abort::new(AbortReason::Retry)
    }

    /// Creates an abort attributed to a conflict on `var` with `enemy`.
    #[must_use]
    pub fn on_conflict(reason: AbortReason, var: VarId, enemy: ThreadId) -> Self {
        Abort {
            reason,
            var: Some(var),
            enemy: Some(enemy),
            enemy_epoch: None,
        }
    }

    /// Attaches the enemy's attempt epoch as sampled while the conflict was
    /// live (i.e. while the enemy still held the contested stripe).
    #[must_use]
    pub fn with_enemy_epoch(mut self, epoch: u32) -> Self {
        self.enemy_epoch = Some(epoch);
        self
    }

    /// The cause of the abort.
    pub fn reason(&self) -> AbortReason {
        self.reason
    }

    /// The variable on which the conflict occurred, if known.
    pub fn var(&self) -> Option<VarId> {
        self.var
    }

    /// The thread this transaction lost against, if known.
    pub fn enemy(&self) -> Option<ThreadId> {
        self.enemy
    }

    /// The enemy's attempt epoch observed at conflict-detection time, if it
    /// was sampled while the conflict was live. `None` means the enemy had
    /// already released the contested stripe by the time the abort was
    /// built (its conflicting attempt is over — there is nothing left to
    /// wait for), or the conflict predates epoch stamping.
    pub fn enemy_epoch(&self) -> Option<u32> {
        self.enemy_epoch
    }
}

impl fmt::Display for Abort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction aborted: {}", self.reason)?;
        if let Some(v) = self.var {
            write!(f, " on {v}")?;
        }
        if let Some(t) = self.enemy {
            write!(f, " against {t}")?;
        }
        if let Some(e) = self.enemy_epoch {
            write!(f, " (enemy epoch {e})")?;
        }
        Ok(())
    }
}

impl Error for Abort {}

/// Result alias used by transaction bodies.
pub type TxResult<T> = Result<T, Abort>;

/// Terminal failures of the bounded transaction entry points
/// ([`run_budgeted`](crate::TmRuntime::run_budgeted),
/// [`read_only_budgeted`](crate::TmRuntime::read_only_budgeted),
/// [`run_with_deadline`](crate::TmRuntime::run_with_deadline)).
///
/// Unlike [`Abort`], which the retry loop consumes internally, a `TmError`
/// reaches the caller: the transaction did not commit and will not be
/// retried.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TmError {
    /// The attempt budget ran out before a commit.
    RetryLimitExceeded {
        /// Number of attempts consumed (equals the budget passed in).
        attempts: u64,
    },
    /// The deadline passed while parked in [`Tx::retry`](crate::Tx::retry)
    /// with no commit changing the read set.
    RetryTimeout {
        /// Time between the first attempt and giving up.
        waited: std::time::Duration,
    },
    /// The body accessed a [`TVar`](crate::TVar) through a runtime other
    /// than the one it is bound to. Cross-runtime sharing would validate
    /// against the wrong orec table and park on the wrong waitlist (lost
    /// wakeups), so it is rejected eagerly with this typed error.
    ForeignTVar {
        /// The variable that was accessed.
        var: VarId,
        /// Id of the runtime the variable is bound to.
        owner: u64,
        /// Id of the runtime the access came through.
        runtime: u64,
    },
}

impl fmt::Display for TmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmError::RetryLimitExceeded { attempts } => {
                write!(f, "transaction gave up after {attempts} attempts")
            }
            TmError::RetryTimeout { waited } => write!(
                f,
                "transaction timed out after {waited:?}: retry parked with no writer arriving"
            ),
            TmError::ForeignTVar {
                var,
                owner,
                runtime,
            } => write!(
                f,
                "foreign TVar: {var} is bound to runtime {owner} but was accessed through \
                 runtime {runtime}; sharing a TVar across runtimes loses wakeups and \
                 validates against the wrong orec table"
            ),
        }
    }
}

impl Error for TmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_conflict_details() {
        let a = Abort::on_conflict(
            AbortReason::WriteConflict,
            VarId::from_u64(9),
            ThreadId::from_raw(3),
        );
        let s = a.to_string();
        assert!(s.contains("write/write conflict"), "{s}");
        assert!(s.contains("v9"), "{s}");
        assert!(s.contains("t3"), "{s}");
    }

    #[test]
    fn enemy_epoch_is_carried_when_stamped() {
        let base = Abort::on_conflict(
            AbortReason::WriteConflict,
            VarId::from_u64(1),
            ThreadId::from_raw(2),
        );
        assert_eq!(base.enemy_epoch(), None, "unstamped by default");
        let stamped = base.with_enemy_epoch(41);
        assert_eq!(stamped.enemy_epoch(), Some(41));
        assert_eq!(
            stamped.enemy(),
            base.enemy(),
            "stamping changes nothing else"
        );
    }

    #[test]
    fn plain_abort_has_no_details() {
        let a = Abort::new(AbortReason::Killed);
        assert!(a.var().is_none());
        assert!(a.enemy().is_none());
        assert!(a.enemy_epoch().is_none());
        assert_eq!(
            a.to_string(),
            "transaction aborted: killed by contention manager"
        );
    }

    #[test]
    fn abort_is_a_std_error() {
        fn takes_err<E: Error>(_: E) {}
        takes_err(Abort::new(AbortReason::ReadValidation));
    }

    #[test]
    fn retry_is_control_flow_not_a_conflict() {
        let a = Abort::retry();
        assert_eq!(a.reason(), AbortReason::Retry);
        assert!(a.reason().is_retry());
        assert!(!AbortReason::WriteConflict.is_retry());
        assert!(a.var().is_none());
        assert!(a.enemy().is_none());
        assert!(a.to_string().contains("retry"), "{a}");
    }

    #[test]
    fn tm_error_displays_and_is_a_std_error() {
        fn takes_err<E: Error>(_: E) {}
        let limit = TmError::RetryLimitExceeded { attempts: 3 };
        assert!(limit.to_string().contains("3 attempts"), "{limit}");
        let timeout = TmError::RetryTimeout {
            waited: std::time::Duration::from_millis(5),
        };
        assert!(timeout.to_string().contains("timed out"), "{timeout}");
        let foreign = TmError::ForeignTVar {
            var: VarId::from_u64(7),
            owner: 1,
            runtime: 2,
        };
        let s = foreign.to_string();
        assert!(s.contains("v7"), "{s}");
        assert!(s.contains("runtime 1"), "{s}");
        assert!(s.contains("runtime 2"), "{s}");
        takes_err(limit);
    }

    #[test]
    fn new_abort_reasons_display() {
        assert!(Abort::new(AbortReason::ForeignTVar)
            .to_string()
            .contains("different runtime"));
        assert!(Abort::new(AbortReason::FaultInjected)
            .to_string()
            .contains("fault injection"));
        assert!(!AbortReason::ForeignTVar.is_retry());
    }

    #[test]
    fn display_includes_enemy_epoch_when_stamped() {
        let a = Abort::on_conflict(
            AbortReason::WriteConflict,
            VarId::from_u64(1),
            ThreadId::from_raw(2),
        )
        .with_enemy_epoch(17);
        assert!(a.to_string().contains("enemy epoch 17"), "{a}");
    }
}
