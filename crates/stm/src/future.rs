//! Transaction = future: run a transaction as a [`Future`] that suspends
//! instead of parking a thread.
//!
//! [`atomically_async`] is the async sibling of
//! [`atomically`](crate::atomically): the body is the same synchronous
//! `FnMut(&mut Tx)` closure — attempts run to completion *inside*
//! [`poll`](Future::poll), never across an `.await` point — but a
//! [`Tx::retry`] that would park the OS thread instead registers a
//! [`Waker`]-backed parker on the per-stripe waitlist and returns
//! [`Poll::Pending`]. The committing writer that would have issued a futex
//! wake delivers the waker at the exact same protocol point, so one commit
//! wakes thread-parked and future-suspended waiters alike (DESIGN.md §12).
//!
//! # Poll / retry state machine
//!
//! ```text
//!            ┌────────────────────────────────────────────────┐
//!            ▼                                                │
//! poll ─► attempt loop ─ commit ──► Poll::Ready(value)        │ epoch moved
//!            │                                                │ (deregister,
//!            │ Tx::retry                                      │  revalidate)
//!            ▼                                                │
//!    register AsyncParker ─ read set changed ─► loop          │
//!            │ registered                                     │
//!            ▼                                                │
//!     Poll::Pending ──► re-poll: waker stored, epoch equal ───┘
//!                              │ epoch equal
//!                              ▼
//!                        Poll::Pending (spurious poll)
//! ```
//!
//! # Cancellation
//!
//! Dropping a suspended `TxFuture` is the async analogue of a panic
//! unwinding out of [`TmRuntime::run`]: the drop handler deregisters the
//! parker from every watched bucket (no waitlist slot leaks, no stray wake
//! reaches a dead task) and fires the scheduler's
//! [`on_reset`](crate::sched::TxScheduler::on_reset) hook so policies that
//! tracked the blocked transaction can clean up. No stripe lock can be
//! held at that point — a future only suspends after its attempt rolled
//! back — so the reset never observes locked stripes.
//!
//! # What never happens here
//!
//! * **Blocking in `poll`.** Conflict aborts re-run the body a bounded
//!   number of times per poll, then yield cooperatively
//!   (`wake_by_ref` + `Pending`) instead of backoff-sleeping on an
//!   executor thread.
//! * **Timed rounds.** [`TmConfig::retry_wait`](crate::TmConfig::retry_wait)
//!   bounds thread-parked rounds only; a suspended future is purely
//!   wake-driven. A retry with an empty read set therefore pends forever —
//!   the same body bug the thread path only papers over by waking
//!   spuriously every round.

use std::fmt;
use std::future::Future;
use std::marker::PhantomData;
use std::pin::Pin;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::task::{Context, Poll};

use crate::config::TxnKind;
use crate::error::{AbortReason, TmError, TxResult};
use crate::faults::FaultSite;
use crate::runtime::{AttemptGuard, TmRuntime};
use crate::sched::SchedCtx;
use crate::thread::ThreadCtx;
use crate::txn::Tx;
use crate::waitlist::{AsyncParker, AsyncRegisterOutcome};

/// Consecutive conflict aborts one `poll` absorbs before yielding back to
/// the executor. Replaces the thread path's backoff sleep: an executor
/// thread must never block, so heavy contention is spread across polls by
/// re-enqueueing the task instead of spinning it hot.
const ABORTS_PER_POLL: u32 = 16;

/// Where a suspended future is registered, and what must be undone when it
/// resumes or is dropped.
struct Suspension {
    /// Deduplicated waitlist bucket indices holding this future's parker.
    buckets: Vec<usize>,
    /// The parker epoch sampled before registration; an unequal value on
    /// re-poll proves a commit bumped a watched stripe since.
    observed: u32,
    /// The thread context the suspending attempt ran under — kept so a
    /// drop-while-suspended can report the cancellation to the scheduler
    /// under the same identity the `on_retry_wait` hook used.
    ctx: Arc<ThreadCtx>,
}

/// A transaction running as a future — created by [`atomically_async`].
///
/// Completes with the body's `Ok` value once an attempt commits. While the
/// transaction is blocked in [`Tx::retry`] the future is suspended: it
/// holds a registered parker on the retry waitlist and consumes no thread.
///
/// # Panics
///
/// Polling propagates panics from the body and panics on cross-runtime
/// `TVar` access, exactly like [`TmRuntime::run`]. Polling again after the
/// future returned [`Poll::Ready`] panics.
pub struct TxFuture<T, F> {
    rt: TmRuntime,
    body: F,
    parker: Arc<AsyncParker>,
    suspended: Option<Suspension>,
    done: bool,
    _result: PhantomData<fn() -> T>,
}

/// Runs `body` as a transaction on `rt`, as a future.
///
/// The async spelling of [`atomically`](crate::atomically): the body stays
/// a synchronous `FnMut(&mut Tx)` closure and every attempt runs entirely
/// within one `poll`, but a blocked [`Tx::retry`] suspends the task
/// instead of parking the thread. Tens of thousands of blocked consumers
/// then cost a few hundred bytes each — a registered parker and a stored
/// [`Waker`](std::task::Waker) — rather than an OS thread stack.
///
/// The returned future does nothing until polled. It is `Unpin`, so it can
/// be driven by hand in tests, and `Send` when the body is.
///
/// # Examples
///
/// ```
/// use futures::executor::block_on;
/// use shrink_stm::future::atomically_async;
/// use shrink_stm::{TmRuntime, TVar};
///
/// let rt = TmRuntime::new();
/// let v = TVar::new(41u32);
/// let got = block_on(atomically_async(&rt, |tx| tx.modify(&v, |x| x + 1)));
/// assert_eq!(got, ());
/// assert_eq!(v.snapshot(), 42);
/// ```
pub fn atomically_async<T, F>(rt: &TmRuntime, body: F) -> TxFuture<T, F>
where
    F: FnMut(&mut Tx<'_>) -> TxResult<T>,
{
    TxFuture {
        rt: rt.clone(),
        body,
        parker: Arc::new(AsyncParker::new()),
        suspended: None,
        done: false,
        _result: PhantomData,
    }
}

// The future owns all its state behind `Arc`s and never self-references;
// hand-rolled polling in tests relies on this.
impl<T, F> Unpin for TxFuture<T, F> {}

impl<T, F> Future for TxFuture<T, F>
where
    F: FnMut(&mut Tx<'_>) -> TxResult<T>,
{
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let this = self.get_mut();
        assert!(!this.done, "TxFuture polled after completion");

        if let Some(susp) = &this.suspended {
            // Lost-wakeup ordering, poll side: store the waker *first*,
            // then read the epoch. The committer bumps the epoch first,
            // then takes the waker — both slot accesses under the parker's
            // mutex — so whichever side runs second sees the other's
            // effect: either we observe the bumped epoch here, or the
            // committer finds our fresh waker and wakes us.
            this.parker.set_waker(cx.waker());
            if this.parker.epoch() == susp.observed {
                return Poll::Pending; // spurious poll; still waiting
            }
            // A commit touched a watched stripe: resume. Deregister before
            // re-running so a false alarm re-registers from scratch.
            let susp = this.suspended.take().expect("checked above");
            this.rt
                .inner
                .retry_waits
                .deregister_async(&susp.buckets, &this.parker);
            this.rt.inner.retry_waits.note_async_woken();
        }

        let ctx = this.rt.current_ctx();
        let inner = &*this.rt.inner;
        let mut consecutive_aborts: u32 = 0;
        loop {
            // Same bracket as the thread path (`run_attempts`): guard
            // first, `tx` second, so a body panic unwinding out of `poll`
            // rolls the attempt back before the guard resets the scheduler.
            let guard = AttemptGuard::new(inner, &ctx, TxnKind::ReadWrite);
            inner.scheduler.before_start(&guard.sched_ctx());
            let _ = crate::failpoint!(FaultSite::SchedBeforeStart);
            let mut tx = Tx::begin(inner, &ctx);
            let committed = match (this.body)(&mut tx) {
                Ok(value) => tx.try_commit().map(|()| value),
                Err(abort) => Err(abort),
            };
            match committed {
                Ok(value) => {
                    let (reads, writes) = tx.take_logs();
                    drop(tx);
                    ctx.commits.fetch_add(1, Ordering::Relaxed);
                    inner
                        .scheduler
                        .on_commit(&guard.sched_ctx(), &reads, &writes);
                    let _ = crate::failpoint!(FaultSite::SchedOnCommit);
                    guard.complete();
                    this.done = true;
                    return Poll::Ready(value);
                }
                Err(abort) if abort.reason() == AbortReason::Retry => {
                    // Deliberate blocking: suspend the task instead of
                    // parking the thread.
                    tx.rollback();
                    let wait_plan = tx.retry_wait_plan();
                    let (reads, writes) = tx.take_logs();
                    drop(tx);
                    ctx.retry_waits.fetch_add(1, Ordering::Relaxed);
                    inner
                        .scheduler
                        .on_retry_wait(&guard.sched_ctx(), &reads, &writes);
                    let _ = crate::failpoint!(FaultSite::SchedOnRetryWait);
                    // Close the scheduler bracket *before* suspending, like
                    // the thread path does before parking: no hook bracket
                    // stays open across Pending.
                    guard.complete();
                    // Waker before registration, epoch before registration:
                    // a commit landing between the epoch sample and the
                    // registration also changed an orec, which the
                    // register-fence-validate protocol catches (`Changed`).
                    this.parker.set_waker(cx.waker());
                    let observed = this.parker.epoch();
                    match inner
                        .retry_waits
                        .register_async(&inner.orecs, &wait_plan, &this.parker)
                    {
                        AsyncRegisterOutcome::Changed => {
                            // The read set already moved: re-run now.
                            consecutive_aborts = 0;
                        }
                        AsyncRegisterOutcome::Registered { buckets } => {
                            this.suspended = Some(Suspension {
                                buckets,
                                observed,
                                ctx,
                            });
                            return Poll::Pending;
                        }
                    }
                }
                Err(abort) if abort.reason() == AbortReason::ForeignTVar => {
                    tx.rollback();
                    let info = tx.foreign_access().expect("foreign abort carries details");
                    drop(tx);
                    // `run` panics on this too: it is a program bug, not a
                    // schedulable condition, and `poll` has no error lane.
                    panic!(
                        "{}",
                        TmError::ForeignTVar {
                            var: info.var,
                            owner: info.owner,
                            runtime: inner.id,
                        }
                    );
                }
                Err(abort) => {
                    tx.rollback();
                    let (reads, writes) = tx.take_logs();
                    drop(tx);
                    ctx.aborts.fetch_add(1, Ordering::Relaxed);
                    inner
                        .scheduler
                        .on_abort(&guard.sched_ctx(), &abort, &reads, &writes);
                    let _ = crate::failpoint!(FaultSite::SchedOnAbort);
                    guard.complete();
                    consecutive_aborts += 1;
                    if consecutive_aborts >= ABORTS_PER_POLL {
                        // Cooperative backoff: re-enqueue instead of
                        // sleeping on the executor thread.
                        cx.waker().wake_by_ref();
                        return Poll::Pending;
                    }
                }
            }
        }
    }
}

impl<T, F> Drop for TxFuture<T, F> {
    fn drop(&mut self) {
        let Some(susp) = self.suspended.take() else {
            return;
        };
        let inner = &*self.rt.inner;
        // Cancellation-as-unwind, async flavour. Deregistration removes the
        // parker from every watched bucket (registered-parker counts return
        // to zero, a later commit finds nothing to wake) and clears the
        // stored waker, so even a committer that snapshotted the old bucket
        // list delivers no wake to a dead task.
        inner
            .retry_waits
            .deregister_async(&susp.buckets, &self.parker);
        // The suspension held no scheduler bracket open (`on_retry_wait` +
        // complete ran before Pending), but policies that tracked the
        // blocked transaction still hear about the abandonment — `on_reset`
        // is specified to tolerate firing with nothing held.
        inner.scheduler.on_reset(&SchedCtx {
            thread: susp.ctx.id(),
            visible: &inner.orecs,
            epochs: &inner.registry,
            kind: TxnKind::ReadWrite,
        });
    }
}

impl<T, F> fmt::Debug for TxFuture<T, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxFuture")
            .field("runtime", &self.rt.id())
            .field("suspended", &self.suspended.is_some())
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}
