//! Deterministic, seeded fault injection for the runtime's hazard sites.
//!
//! Every place where the runtime manipulates shared liveness state — orec
//! acquire/release, the commit version-install window, waitlist
//! register/validate/wake, the scheduler hook bracket, `EventCount`
//! park/wake, and attempt-epoch advance/retire — carries a
//! [`failpoint!`](crate::failpoint) probe. With the `faults` cargo feature
//! **off** (the default) every probe compiles to a `const false` and the
//! instrumented code is byte-identical to uninstrumented code. With the
//! feature **on**, an installed [`ScheduleBuilder`] schedule injects, from a
//! seeded deterministic stream:
//!
//! * **delays** — a short sleep, widening race windows;
//! * **spurious aborts** — the probe reports "abort here" at sites that are
//!   allowed to fail with [`AbortReason::FaultInjected`](crate::AbortReason);
//! * **spurious wakeups** — parked paths return as if woken without a
//!   matching notify, exercising the re-validation loops;
//! * **panics** — `panic!` unwinds out of the site, exercising the RAII
//!   drop-guards that keep the runtime reusable.
//!
//! # Seeding and replay
//!
//! Schedules are pure functions of `(seed, site, thread lane, per-thread hit
//! counter)`, so a given seed replays the same decision stream on every run
//! of the same interleaving. Install one programmatically:
//!
//! ```ignore
//! let _guard = shrink_stm::faults::ScheduleBuilder::new(42)
//!     .rate_per_mille(25)
//!     .sites(&[shrink_stm::FaultSite::CommitInstall])
//!     .kinds(&[shrink_stm::FaultKind::Panic])
//!     .install();
//! ```
//!
//! or ambiently through the environment (picked up on the first probe):
//!
//! ```text
//! SHRINK_FAULTS=<seed>[,rate=<per-mille>][,sites=<name>+<name>|all][,kinds=delay+abort+wake+panic]
//! ```
//!
//! Injection never fires while the current thread is already panicking
//! (probes on unwind/cleanup paths stay inert), and sites are masked to the
//! fault kinds they can absorb safely — e.g. the commit install loop itself
//! is never interrupted, only the window before it, so atomicity of
//! installed writes is preserved by construction.

use std::fmt;

/// Instrumented hazard sites (the failpoint catalog).
///
/// Each variant names one probe location; DESIGN.md §11 documents what each
/// site guards and which fault kinds it accepts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FaultSite {
    /// `Tx` taking a stripe lock (encounter-time orec acquisition).
    OrecAcquire = 0,
    /// Rollback releasing owned stripes (runs on drop/unwind paths).
    OrecRelease = 1,
    /// `try_commit` after read-set validation, before the first value
    /// install — commit locks are held, nothing is published yet.
    CommitInstall = 2,
    /// `retry` registration on the stripe waitlist, before any bucket is
    /// touched.
    WaitRegister = 3,
    /// The lost-wakeup re-validation between waitlist registration and the
    /// park (spurious wake here skips the park entirely).
    WaitValidate = 4,
    /// A committer waking stripe waiters in `notify_commit`.
    WaitWake = 5,
    /// After the scheduler's `before_start` hook returned (serialization
    /// may be held).
    SchedBeforeStart = 6,
    /// After the scheduler's `on_commit` hook returned.
    SchedOnCommit = 7,
    /// After the scheduler's `on_abort` hook returned.
    SchedOnAbort = 8,
    /// After the scheduler's `on_retry_wait` hook returned.
    SchedOnRetryWait = 9,
    /// An `EventCount` park (waitlist parker or attempt-epoch wait);
    /// spurious wake here returns as if notified.
    EventPark = 10,
    /// An `EventCount` advance waking waiters (attempt-epoch bump).
    EventWake = 11,
    /// `finish_attempt` advancing the thread's attempt epoch.
    EpochAdvance = 12,
    /// Thread exit retiring its epoch slot (runs in a TLS destructor).
    EpochRetire = 13,
    /// A cross-runtime select about to register one parker on several
    /// runtimes' waitlists, before any bucket is touched.
    RegistryRegister = 14,
    /// The select's park point, inside the registered-but-not-deregistered
    /// window (spurious wake here skips the park as if a commit fired).
    RegistryWake = 15,
}

/// What an active schedule may inject at a site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Sleep a few microseconds, widening race windows.
    Delay,
    /// Fail the operation with [`AbortReason::FaultInjected`](crate::AbortReason).
    SpuriousAbort,
    /// Return from a park/validate as if woken without a notify.
    SpuriousWake,
    /// `panic!` out of the site.
    Panic,
}

impl FaultKind {
    #[cfg_attr(not(feature = "faults"), allow(dead_code))]
    const ALL: [FaultKind; 4] = [
        FaultKind::Delay,
        FaultKind::SpuriousAbort,
        FaultKind::SpuriousWake,
        FaultKind::Panic,
    ];

    fn bit(self) -> u8 {
        match self {
            FaultKind::Delay => 1,
            FaultKind::SpuriousAbort => 2,
            FaultKind::SpuriousWake => 4,
            FaultKind::Panic => 8,
        }
    }

    /// The name used in `SHRINK_FAULTS` specs: `delay`, `abort`, `wake`,
    /// `panic`.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Delay => "delay",
            FaultKind::SpuriousAbort => "abort",
            FaultKind::SpuriousWake => "wake",
            FaultKind::Panic => "panic",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FaultSite {
    /// Every instrumented site, in catalog order.
    pub const ALL: [FaultSite; 16] = [
        FaultSite::OrecAcquire,
        FaultSite::OrecRelease,
        FaultSite::CommitInstall,
        FaultSite::WaitRegister,
        FaultSite::WaitValidate,
        FaultSite::WaitWake,
        FaultSite::SchedBeforeStart,
        FaultSite::SchedOnCommit,
        FaultSite::SchedOnAbort,
        FaultSite::SchedOnRetryWait,
        FaultSite::EventPark,
        FaultSite::EventWake,
        FaultSite::EpochAdvance,
        FaultSite::EpochRetire,
        FaultSite::RegistryRegister,
        FaultSite::RegistryWake,
    ];

    #[cfg_attr(not(feature = "faults"), allow(dead_code))]
    fn bit(self) -> u32 {
        1u32 << (self as u8)
    }

    /// Bitmask of [`FaultKind`]s this site can absorb without corrupting
    /// runtime invariants. Sites on unwind/cleanup paths (release, retire)
    /// accept only delays; sites between waitlist registration and
    /// deregistration accept wakes but never panics; sites before any state
    /// is published accept the full menu.
    fn allowed_kinds(self) -> u8 {
        const D: u8 = 1;
        const A: u8 = 2;
        const W: u8 = 4;
        const P: u8 = 8;
        match self {
            FaultSite::OrecAcquire | FaultSite::CommitInstall => D | A | P,
            FaultSite::OrecRelease | FaultSite::EventWake => D,
            FaultSite::WaitRegister | FaultSite::WaitWake | FaultSite::RegistryRegister => D | P,
            FaultSite::WaitValidate | FaultSite::EventPark | FaultSite::RegistryWake => D | W,
            FaultSite::SchedBeforeStart
            | FaultSite::SchedOnCommit
            | FaultSite::SchedOnAbort
            | FaultSite::SchedOnRetryWait => D | P,
            FaultSite::EpochAdvance | FaultSite::EpochRetire => D,
        }
    }

    /// True when an active schedule may inject `kind` at this site.
    pub fn allows(self, kind: FaultKind) -> bool {
        self.allowed_kinds() & kind.bit() != 0
    }

    /// The name used in `SHRINK_FAULTS` specs and panic messages.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::OrecAcquire => "orec_acquire",
            FaultSite::OrecRelease => "orec_release",
            FaultSite::CommitInstall => "commit_install",
            FaultSite::WaitRegister => "wait_register",
            FaultSite::WaitValidate => "wait_validate",
            FaultSite::WaitWake => "wait_wake",
            FaultSite::SchedBeforeStart => "sched_before_start",
            FaultSite::SchedOnCommit => "sched_on_commit",
            FaultSite::SchedOnAbort => "sched_on_abort",
            FaultSite::SchedOnRetryWait => "sched_on_retry_wait",
            FaultSite::EventPark => "event_park",
            FaultSite::EventWake => "event_wake",
            FaultSite::EpochAdvance => "epoch_advance",
            FaultSite::EpochRetire => "epoch_retire",
            FaultSite::RegistryRegister => "registry_register",
            FaultSite::RegistryWake => "registry_wake",
        }
    }

    #[cfg_attr(not(feature = "faults"), allow(dead_code))]
    fn from_name(name: &str) -> Option<FaultSite> {
        FaultSite::ALL.iter().copied().find(|s| s.name() == name)
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Probes a failpoint: returns `true` when the active fault schedule wants
/// the calling site to take its spurious-abort/spurious-wake branch.
/// Delays and panics happen inside the probe itself.
///
/// With the `faults` feature off this expands to a `const false` the
/// optimizer deletes, so instrumented code pays nothing in default builds.
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {
        $crate::faults::hit($site)
    };
}

/// Inert probe body used when the `faults` feature is off: always `false`,
/// resolved at compile time.
#[cfg(not(feature = "faults"))]
#[inline(always)]
pub const fn hit(_site: FaultSite) -> bool {
    false
}

#[cfg(feature = "faults")]
pub use active::{
    from_env, hit, parse_spec, pin_thread_stream, reset_stats, stats, FaultGuard, FaultStats,
    ScheduleBuilder,
};

#[cfg(feature = "faults")]
mod active {
    use super::{FaultKind, FaultSite};
    use std::cell::Cell;
    use std::fmt;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Once};
    use std::time::Duration;

    use parking_lot::RwLock;

    #[derive(Debug)]
    struct Schedule {
        seed: u64,
        rate_per_mille: u32,
        sites_mask: u32,
        kinds_mask: u8,
    }

    static ACTIVE: RwLock<Option<Arc<Schedule>>> = RwLock::new(None);
    static ENV_ONCE: Once = Once::new();
    static NEXT_LANE: AtomicU64 = AtomicU64::new(0);

    static DELAYS: AtomicU64 = AtomicU64::new(0);
    static SPURIOUS_ABORTS: AtomicU64 = AtomicU64::new(0);
    static SPURIOUS_WAKES: AtomicU64 = AtomicU64::new(0);
    static PANICS: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        static LANE: Cell<u64> = const { Cell::new(u64::MAX) };
        static HITS: Cell<u64> = const { Cell::new(0) };
    }

    /// Counts of injected faults since the last [`reset_stats`], summed over
    /// all threads and sites. Lets tests assert a schedule actually fired
    /// and benchmarks prove one did not.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct FaultStats {
        /// Injected delays.
        pub delays: u64,
        /// Injected spurious aborts.
        pub spurious_aborts: u64,
        /// Injected spurious wakeups.
        pub spurious_wakes: u64,
        /// Injected panics.
        pub panics: u64,
    }

    impl FaultStats {
        /// Total injected faults of any kind.
        pub fn total(&self) -> u64 {
            self.delays + self.spurious_aborts + self.spurious_wakes + self.panics
        }
    }

    /// Snapshot of the global injected-fault counters.
    pub fn stats() -> FaultStats {
        FaultStats {
            delays: DELAYS.load(Ordering::Relaxed),
            spurious_aborts: SPURIOUS_ABORTS.load(Ordering::Relaxed),
            spurious_wakes: SPURIOUS_WAKES.load(Ordering::Relaxed),
            panics: PANICS.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the global injected-fault counters.
    pub fn reset_stats() {
        DELAYS.store(0, Ordering::Relaxed);
        SPURIOUS_ABORTS.store(0, Ordering::Relaxed);
        SPURIOUS_WAKES.store(0, Ordering::Relaxed);
        PANICS.store(0, Ordering::Relaxed);
    }

    /// Configures a fault schedule; [`install`](ScheduleBuilder::install)
    /// activates it for the scope of the returned guard.
    #[must_use = "a builder does nothing until .install() activates it"]
    #[derive(Clone, Debug)]
    pub struct ScheduleBuilder {
        seed: u64,
        rate_per_mille: u32,
        sites_mask: u32,
        kinds_mask: u8,
    }

    impl ScheduleBuilder {
        /// Starts a schedule from `seed`: every site, every kind, firing on
        /// 1% of probes (`rate_per_mille(10)`).
        pub fn new(seed: u64) -> Self {
            ScheduleBuilder {
                seed,
                rate_per_mille: 10,
                sites_mask: u32::MAX,
                kinds_mask: u8::MAX,
            }
        }

        /// The schedule's seed (for replay instructions in test output).
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// Probability, in thousandths, that an eligible probe injects.
        /// `1000` fires on every probe.
        #[must_use = "builder methods return the updated builder"]
        pub fn rate_per_mille(mut self, rate: u32) -> Self {
            self.rate_per_mille = rate.min(1000);
            self
        }

        /// Restricts injection to `sites` (default: all).
        #[must_use = "builder methods return the updated builder"]
        pub fn sites(mut self, sites: &[FaultSite]) -> Self {
            self.sites_mask = sites.iter().fold(0, |m, s| m | s.bit());
            self
        }

        /// Restricts injection to `kinds` (default: all). Each site further
        /// masks to the kinds it can absorb safely.
        #[must_use = "builder methods return the updated builder"]
        pub fn kinds(mut self, kinds: &[FaultKind]) -> Self {
            self.kinds_mask = kinds.iter().fold(0, |m, k| m | k.bit());
            self
        }

        fn schedule(&self) -> Arc<Schedule> {
            Arc::new(Schedule {
                seed: self.seed,
                rate_per_mille: self.rate_per_mille,
                sites_mask: self.sites_mask,
                kinds_mask: self.kinds_mask,
            })
        }

        /// Activates the schedule process-wide until the returned guard
        /// drops, which restores whatever schedule (possibly none) was
        /// active before.
        ///
        /// Any `SHRINK_FAULTS` ambient schedule is primed first, so a guard
        /// installed before the first probe still *displaces* the ambient
        /// schedule (and restores it on drop) instead of being clobbered by
        /// the lazy env initialization.
        pub fn install(self) -> FaultGuard {
            prime_env();
            let mut active = ACTIVE.write();
            let prev = active.replace(self.schedule());
            FaultGuard { prev }
        }
    }

    /// RAII scope for an installed schedule; dropping restores the
    /// previously active schedule.
    #[must_use = "dropping the guard immediately uninstalls the schedule"]
    #[derive(Debug)]
    pub struct FaultGuard {
        prev: Option<Arc<Schedule>>,
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            *ACTIVE.write() = self.prev.take();
        }
    }

    /// Parses a `SHRINK_FAULTS` spec:
    /// `<seed>[,rate=<per-mille>][,sites=<name>+…|all][,kinds=<name>+…|all]`.
    /// Returns `None` on any malformed field.
    pub fn parse_spec(spec: &str) -> Option<ScheduleBuilder> {
        let mut fields = spec.split(',');
        let seed: u64 = fields.next()?.trim().parse().ok()?;
        let mut builder = ScheduleBuilder::new(seed);
        for field in fields {
            let (key, value) = field.trim().split_once('=')?;
            match key {
                "rate" => builder = builder.rate_per_mille(value.parse().ok()?),
                "sites" if value == "all" => builder.sites_mask = u32::MAX,
                "sites" => {
                    let sites: Option<Vec<FaultSite>> =
                        value.split('+').map(FaultSite::from_name).collect();
                    builder = builder.sites(&sites?);
                }
                "kinds" if value == "all" => builder.kinds_mask = u8::MAX,
                "kinds" => {
                    let kinds: Option<Vec<FaultKind>> = value
                        .split('+')
                        .map(|n| FaultKind::ALL.iter().copied().find(|k| k.name() == n))
                        .collect();
                    builder = builder.kinds(&kinds?);
                }
                _ => return None,
            }
        }
        Some(builder)
    }

    /// The schedule described by the `SHRINK_FAULTS` environment variable,
    /// if set and well-formed. The first probe of the process installs this
    /// automatically; tests use it to pick up the CI-provided seed.
    pub fn from_env() -> Option<ScheduleBuilder> {
        std::env::var("SHRINK_FAULTS")
            .ok()
            .and_then(|s| parse_spec(&s))
    }

    /// Pins the calling thread's probe lane and resets its hit counter, so
    /// a probe stream replays independently of thread spawn order. Test
    /// harness helper; normal threads draw lanes automatically.
    pub fn pin_thread_stream(lane: u64) {
        LANE.with(|l| l.set(lane));
        HITS.with(|h| h.set(0));
    }

    /// One-time installation of the `SHRINK_FAULTS` ambient schedule. Runs
    /// before the first probe decides and before any guard install, so the
    /// guard stack always sits *on top of* the ambient schedule.
    fn prime_env() {
        ENV_ONCE.call_once(|| {
            if let Some(builder) = from_env() {
                *ACTIVE.write() = Some(builder.schedule());
            }
        });
    }

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Live probe body: decides deterministically from
    /// `(seed, site, lane, hit counter)` whether and what to inject.
    /// See [`failpoint!`](crate::failpoint).
    pub fn hit(site: FaultSite) -> bool {
        // Probes on unwind paths (rollback, guard drops) must stay inert
        // while a panic is already in flight: a second panic would abort
        // the process and delays would only slow the cleanup under test.
        if std::thread::panicking() {
            return false;
        }
        prime_env();
        let Some(sched) = ACTIVE.read().clone() else {
            return false;
        };
        if sched.sites_mask & site.bit() == 0 {
            return false;
        }
        let kinds_mask = sched.kinds_mask & site.allowed_kinds();
        if kinds_mask == 0 {
            return false;
        }
        let lane = LANE.with(|l| {
            if l.get() == u64::MAX {
                l.set(NEXT_LANE.fetch_add(1, Ordering::Relaxed));
            }
            l.get()
        });
        let n = HITS.with(|h| {
            let n = h.get();
            h.set(n + 1);
            n
        });
        let x = splitmix64(
            sched.seed
                ^ (site as u64).wrapping_mul(0xA24B_AED4_963E_E407)
                ^ lane.wrapping_mul(0x9FB2_1C65_1E98_DF25)
                ^ n,
        );
        if (x % 1000) as u32 >= sched.rate_per_mille {
            return false;
        }
        let candidates: Vec<FaultKind> = FaultKind::ALL
            .iter()
            .copied()
            .filter(|k| kinds_mask & k.bit() != 0)
            .collect();
        let pick = candidates[((x >> 32) as usize) % candidates.len()];
        match pick {
            FaultKind::Delay => {
                DELAYS.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_micros(1 + (x >> 40) % 50));
                false
            }
            FaultKind::SpuriousAbort => {
                SPURIOUS_ABORTS.fetch_add(1, Ordering::Relaxed);
                true
            }
            FaultKind::SpuriousWake => {
                SPURIOUS_WAKES.fetch_add(1, Ordering::Relaxed);
                true
            }
            FaultKind::Panic => {
                PANICS.fetch_add(1, Ordering::Relaxed);
                panic!(
                    "fault injection: forced panic at {} (seed {}, lane {lane}, hit {n}); \
                     replay with SHRINK_FAULTS={}",
                    site.name(),
                    sched.seed,
                    sched.seed,
                )
            }
        }
    }

    impl fmt::Display for FaultStats {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(
                f,
                "faults injected: {} delays, {} spurious aborts, {} spurious wakes, {} panics",
                self.delays, self.spurious_aborts, self.spurious_wakes, self.panics
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_roundtrip() {
        for (i, a) in FaultSite::ALL.iter().enumerate() {
            for b in &FaultSite::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
        assert_eq!(FaultSite::ALL.len(), 16);
    }

    #[test]
    fn kind_masks_respect_unwind_safety() {
        // Sites that run during drops/unwinds must never panic or abort.
        for site in [
            FaultSite::OrecRelease,
            FaultSite::EventWake,
            FaultSite::EpochAdvance,
            FaultSite::EpochRetire,
        ] {
            assert!(!site.allows(FaultKind::Panic), "{site}");
            assert!(!site.allows(FaultKind::SpuriousAbort), "{site}");
        }
        // The registered-but-not-yet-deregistered window tolerates wakes
        // only — a panic there would leak a waitlist registration. The
        // cross-runtime select has the same two-phase shape.
        assert!(FaultSite::WaitValidate.allows(FaultKind::SpuriousWake));
        assert!(!FaultSite::WaitValidate.allows(FaultKind::Panic));
        assert!(FaultSite::RegistryRegister.allows(FaultKind::Panic));
        assert!(FaultSite::RegistryWake.allows(FaultKind::SpuriousWake));
        assert!(!FaultSite::RegistryWake.allows(FaultKind::Panic));
        // Full menu where nothing is published yet.
        assert!(FaultSite::CommitInstall.allows(FaultKind::Panic));
        assert!(FaultSite::CommitInstall.allows(FaultKind::SpuriousAbort));
    }

    #[cfg(not(feature = "faults"))]
    #[test]
    fn inert_probe_is_const_false() {
        // Compile-time proof of the zero-cost claim: with the feature off
        // a probe is a constant `false` the optimizer deletes.
        const { assert!(!hit(FaultSite::OrecAcquire)) }
    }

    #[cfg(feature = "faults")]
    #[test]
    fn spec_grammar_parses_and_rejects() {
        let b = active::parse_spec("42,rate=25,sites=commit_install+orec_acquire,kinds=panic")
            .expect("well-formed spec");
        assert_eq!(b.seed(), 42);
        assert!(active::parse_spec("").is_none());
        assert!(active::parse_spec("7,bogus=1").is_none());
        assert!(active::parse_spec("7,sites=nope").is_none());
        assert!(active::parse_spec("7,kinds=explode").is_none());
        let _ = active::parse_spec("9,sites=all,kinds=all").expect("all is accepted");
    }

    #[cfg(feature = "faults")]
    #[test]
    fn same_seed_same_decisions() {
        // Determinism probe: two passes over the same (site, counter)
        // stream under the same seed must agree. Uses a private rate of
        // 1000 so every probe decides *something*, and kinds=delay so the
        // decisions are side-effect-observable without unwinding.
        let run = || {
            let _g = ScheduleBuilder::new(7)
                .rate_per_mille(500)
                .kinds(&[FaultKind::SpuriousAbort])
                .sites(&[FaultSite::OrecAcquire, FaultSite::CommitInstall])
                .install();
            // Pin the lane and zero the hit counter so both passes replay
            // the identical (seed, site, lane, counter) stream.
            pin_thread_stream(3);
            (0..64)
                .map(|i| {
                    let site = if i % 2 == 0 {
                        FaultSite::OrecAcquire
                    } else {
                        FaultSite::CommitInstall
                    };
                    hit(site)
                })
                .collect::<Vec<bool>>()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seeded decision stream must replay identically");
        assert!(a.iter().any(|&x| x), "rate 500/1000 must fire sometimes");
        assert!(!a.iter().all(|&x| x), "…but not always");
    }
}
