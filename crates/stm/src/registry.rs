//! Process-global runtime registry and cross-runtime blocking select.
//!
//! PR 8 made cross-runtime `TVar` *touch* a typed refusal
//! ([`TmError::ForeignTVar`]): a sharded deployment that accidentally
//! shares a variable fails loud instead of losing wakeups. This module is
//! the *deliberate* counterpart — the ROADMAP's named gap. A thread that
//! must wait for "whichever of these shards changes first" cannot express
//! that with per-runtime [`TmRuntime::run`] calls: each call parks on one
//! runtime's waitlist and is deaf to commits on every other shard.
//!
//! Two pieces close the gap:
//!
//! * a **registry** — every [`TmRuntime`] is published here at build (and
//!   withdrawn when its last handle drops), so shard ids resolve back to
//!   live runtimes ([`lookup_runtime`]);
//! * a **cross-runtime select** ([`retry_select`] /
//!   [`retry_select_deadline`]) — each [`SelectArm`] is an ordinary
//!   transaction body on its own runtime; the select runs every arm until
//!   it either commits (done: that arm's value is returned) or blocks in
//!   [`Tx::retry`], and when *all* arms block it registers **one** parker
//!   on the union of every arm's read-set stripes *across all the involved
//!   runtimes' waitlists*, so a commit on any shard wakes the thread.
//!
//! # Lost-wakeup protocol
//!
//! The park follows the exact register → `SeqCst` fence → validate → park
//! → deregister discipline of the single-runtime waitlist
//! ([`waitlist`](crate::waitlist) module docs), with one parker registered
//! on several [`StripeWaitlist`]s at once. The commit side needs no
//! changes at all: `notify_commit` on any involved runtime advances the
//! select's parker exactly as it would a native waiter, because the parker
//! is just an [`EventCount`] in the bucket list. The fence pairs with the
//! one in `notify_commit`; validation re-checks every arm's plan against
//! its own runtime's orec table, so a commit that raced ahead of any of
//! the registrations is caught before the sleep.
//!
//! Each park round is bounded by the smallest `retry_wait` among the arms'
//! configurations — the same safety net single-runtime retries have
//! against waits no commit will ever satisfy.
//!
//! [`TmError::ForeignTVar`]: crate::TmError::ForeignTVar
//! [`StripeWaitlist`]: crate::waitlist::StripeWaitlist
//! [`EventCount`]: parking_lot::EventCount

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::Instant;

use parking_lot::{EventCount, Mutex, WaitOutcome};

use crate::error::{TmError, TxResult};
use crate::faults::FaultSite;
use crate::runtime::{BlockOutcome, RuntimeInner, TmRuntime};
use crate::txn::Tx;
use crate::waitlist::StripeWaitlist;

/// Live runtimes by id. Weak entries: the registry must never keep a
/// runtime alive, only make it findable while someone else does.
static RUNTIMES: Mutex<Option<HashMap<u64, Weak<RuntimeInner>>>> = Mutex::new(None);

static SELECT_ROUNDS: AtomicU64 = AtomicU64::new(0);
static SELECT_PARKED: AtomicU64 = AtomicU64::new(0);
static SELECT_WOKEN: AtomicU64 = AtomicU64::new(0);
static SELECT_CHANGED: AtomicU64 = AtomicU64::new(0);
static SELECT_TIMED_OUT: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// The calling thread's select parker. One per thread, reused across
    /// selects: registrations hold clones, and at most one select per
    /// thread is ever inside its park phase (arms run synchronously, and
    /// registration only happens between arm runs).
    static SELECT_PARKER: Arc<EventCount> = Arc::new(EventCount::new());
}

/// Publishes a freshly built runtime. Called by `TmBuilder::build`.
pub(crate) fn register_runtime(inner: &Arc<RuntimeInner>) {
    let mut map = RUNTIMES.lock();
    map.get_or_insert_with(HashMap::new)
        .insert(inner.id, Arc::downgrade(inner));
}

/// Withdraws a dying runtime's entry. Called by `RuntimeInner::drop`.
pub(crate) fn deregister_runtime(id: u64) {
    if let Some(map) = RUNTIMES.lock().as_mut() {
        map.remove(&id);
    }
}

/// Resolves a runtime id — the value [`TmRuntime::id`] returns and
/// [`TmError::ForeignTVar`](crate::TmError::ForeignTVar) reports — back to
/// a live handle, if any handle still exists.
///
/// This is what lets a sharded service route a foreign-access refusal (or
/// a cross-shard protocol step) to the owning shard without threading every
/// runtime handle through every call path.
///
/// # Examples
///
/// ```
/// use shrink_stm::{registry, TmRuntime};
///
/// let rt = TmRuntime::new();
/// let found = registry::lookup_runtime(rt.id()).expect("still alive");
/// assert_eq!(found.id(), rt.id());
/// drop(found);
/// drop(rt);
/// // The last handle is gone: the id no longer resolves.
/// ```
pub fn lookup_runtime(id: u64) -> Option<TmRuntime> {
    let map = RUNTIMES.lock();
    let inner = map.as_ref()?.get(&id)?.upgrade()?;
    Some(TmRuntime { inner })
}

/// Number of live runtimes currently published in the registry.
pub fn registered_runtimes() -> usize {
    RUNTIMES
        .lock()
        .as_ref()
        .map_or(0, |m| m.values().filter(|w| w.strong_count() > 0).count())
}

/// Wait-op counters of the cross-runtime select path, process-global
/// (selects span runtimes, so no single runtime can own them).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelectStats {
    /// Select rounds driven (every arm ran once per round).
    pub rounds: u64,
    /// Rounds that actually parked the thread across the arms' waitlists.
    pub parked: u64,
    /// Parked rounds ended by some shard's commit-side wake.
    pub woken: u64,
    /// Rounds where validation caught a changed stripe before any sleep.
    pub changed_before_park: u64,
    /// Parked rounds that expired with every arm's snapshot unchanged.
    pub timed_out: u64,
}

/// Snapshot of the process-global select counters.
pub fn select_stats() -> SelectStats {
    SelectStats {
        rounds: SELECT_ROUNDS.load(Ordering::Relaxed),
        parked: SELECT_PARKED.load(Ordering::Relaxed),
        woken: SELECT_WOKEN.load(Ordering::Relaxed),
        changed_before_park: SELECT_CHANGED.load(Ordering::Relaxed),
        timed_out: SELECT_TIMED_OUT.load(Ordering::Relaxed),
    }
}

/// One alternative of a cross-runtime select: a transaction body bound to
/// the runtime it must run on.
///
/// The body has ordinary [`Tx`] semantics — it may read, write, and call
/// [`Tx::retry`] when its predicate does not hold. Arms on the *same*
/// runtime are allowed (then the select degenerates to a multi-branch
/// [`Tx::or_else`] with per-arm commit granularity).
pub struct SelectArm<'a, T> {
    rt: TmRuntime,
    body: ArmBody<'a, T>,
}

/// A boxed select-arm transaction body.
type ArmBody<'a, T> = Box<dyn FnMut(&mut Tx<'_>) -> TxResult<T> + 'a>;

impl<'a, T> SelectArm<'a, T> {
    /// Binds `body` to `rt` as one select alternative.
    pub fn new(rt: &TmRuntime, body: impl FnMut(&mut Tx<'_>) -> TxResult<T> + 'a) -> Self {
        SelectArm {
            rt: rt.clone(),
            body: Box::new(body),
        }
    }
}

impl<T> fmt::Debug for SelectArm<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SelectArm")
            .field("runtime", &self.rt.id())
            .finish_non_exhaustive()
    }
}

/// Runs `arms` until one commits, parking across **all** the involved
/// runtimes' waitlists whenever every arm blocks in [`Tx::retry`]. Returns
/// the winning arm's index and value.
///
/// Arms are polled in order each round, so earlier arms win ties — a
/// priority select, like `or_else` chains.
///
/// # Panics
///
/// Panics if `arms` is empty, and propagates the
/// [`TmError::ForeignTVar`](crate::TmError::ForeignTVar) panic when an
/// arm's body touches a `TVar` owned by a *different* runtime than the
/// arm's own (binding arms to the right runtimes is exactly the caller's
/// contract).
///
/// # Examples
///
/// Wait for a message on whichever of two shards delivers first:
///
/// ```
/// use shrink_stm::registry::{retry_select, SelectArm};
/// use shrink_stm::{TmRuntime, TVar};
///
/// let shard_a = TmRuntime::new();
/// let shard_b = TmRuntime::new();
/// let inbox_a: TVar<Option<u32>> = TVar::new(None);
/// let inbox_b: TVar<Option<u32>> = TVar::new(Some(7));
///
/// let (winner, value) = retry_select(&mut [
///     SelectArm::new(&shard_a, |tx| match tx.read(&inbox_a)? {
///         Some(v) => Ok(v),
///         None => tx.retry(),
///     }),
///     SelectArm::new(&shard_b, |tx| match tx.read(&inbox_b)? {
///         Some(v) => Ok(v),
///         None => tx.retry(),
///     }),
/// ]);
/// assert_eq!((winner, value), (1, 7));
/// ```
pub fn retry_select<T>(arms: &mut [SelectArm<'_, T>]) -> (usize, T) {
    match select_rounds(arms, None) {
        Ok(v) => v,
        Err(err @ TmError::ForeignTVar { .. }) => panic!("{err}"),
        Err(_) => unreachable!("unbounded selects cannot time out"),
    }
}

/// [`retry_select`] with a blocking bound: once `deadline` passes while
/// every arm is blocked, gives up instead of parking again.
///
/// Like [`TmRuntime::run_with_deadline`], the deadline bounds *blocking*,
/// not execution — a wake that arrives just before the deadline still gets
/// its re-run, and a running arm is never interrupted.
///
/// # Errors
///
/// Returns [`TmError::RetryTimeout`] when the deadline passed with every
/// arm still blocked, or [`TmError::ForeignTVar`] when an arm's body
/// touched a `TVar` bound to a different runtime than the arm's own.
pub fn retry_select_deadline<T>(
    arms: &mut [SelectArm<'_, T>],
    deadline: Instant,
) -> Result<(usize, T), TmError> {
    select_rounds(arms, Some(deadline))
}

fn select_rounds<T>(
    arms: &mut [SelectArm<'_, T>],
    deadline: Option<Instant>,
) -> Result<(usize, T), TmError> {
    assert!(!arms.is_empty(), "retry_select needs at least one arm");
    let started = deadline.map(|_| Instant::now());
    let mut plans: Vec<Vec<(usize, u64)>> = vec![Vec::new(); arms.len()];
    loop {
        SELECT_ROUNDS.fetch_add(1, Ordering::Relaxed);
        for (i, arm) in arms.iter_mut().enumerate() {
            match arm.rt.run_until_block(&mut *arm.body)? {
                BlockOutcome::Committed(value) => return Ok((i, value)),
                BlockOutcome::Blocked(plan) => plans[i] = plan,
            }
        }
        // Every arm blocked. Probed before any bucket is touched, so an
        // injected panic here cannot leak a registration on any runtime.
        let _ = crate::failpoint!(FaultSite::RegistryRegister);
        let parker = SELECT_PARKER.with(Arc::clone);
        let observed = parker.version();
        let registrations: Vec<Vec<usize>> = arms
            .iter()
            .zip(&plans)
            .map(|(arm, plan)| arm.rt.inner.retry_waits.register_thread(plan, &parker))
            .collect();
        // Pairs with the fence in each runtime's `notify_commit`: a commit
        // on any shard either sees the registration above, or the
        // validation below sees its version stamps. The single fence
        // orders this thread's registrations against *all* the commit
        // sides — the pairing is per-runtime, the fence is not.
        fence(Ordering::SeqCst);
        let stale = arms
            .iter()
            .zip(&plans)
            .any(|(arm, plan)| StripeWaitlist::changed(&arm.rt.inner.orecs, plan));
        let timed_out = if stale {
            SELECT_CHANGED.fetch_add(1, Ordering::Relaxed);
            false
        } else if crate::failpoint!(FaultSite::RegistryWake) {
            // Spurious wake in the registered window: skip the park as if
            // some shard committed, exercising the revalidate-and-re-run
            // loop.
            SELECT_WOKEN.fetch_add(1, Ordering::Relaxed);
            false
        } else {
            let round = arms
                .iter()
                .map(|arm| arm.rt.config().retry_wait)
                .min()
                .expect("arms is non-empty");
            let bound = Instant::now() + round;
            let bound = deadline.map_or(bound, |d| bound.min(d));
            SELECT_PARKED.fetch_add(1, Ordering::Relaxed);
            match parker.wait_while_eq(observed, Some(bound)) {
                WaitOutcome::Advanced => {
                    SELECT_WOKEN.fetch_add(1, Ordering::Relaxed);
                    false
                }
                WaitOutcome::TimedOut => {
                    SELECT_TIMED_OUT.fetch_add(1, Ordering::Relaxed);
                    true
                }
            }
        };
        for (arm, buckets) in arms.iter().zip(&registrations) {
            arm.rt.inner.retry_waits.deregister_thread(buckets, &parker);
        }
        if let Some(d) = deadline {
            // A wake (or a changed plan) earns one more round even at the
            // deadline; only an expired park with nothing new gives up.
            if timed_out && Instant::now() >= d {
                return Err(TmError::RetryTimeout {
                    waited: started.expect("deadline implies start").elapsed(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tvar::TVar;
    use std::time::Duration;

    #[test]
    fn lookup_resolves_live_runtimes_and_forgets_dead_ones() {
        let rt = TmRuntime::new();
        let id = rt.id();
        let found = lookup_runtime(id).expect("live runtime resolves");
        assert_eq!(found.id(), id);
        // Registry entries are weak: dropping every handle kills the entry.
        drop(found);
        drop(rt);
        assert!(lookup_runtime(id).is_none(), "dead id must not resolve");
    }

    #[test]
    fn lookup_is_usable_as_a_runtime_handle() {
        let rt = TmRuntime::new();
        let v = TVar::new(3u64);
        rt.run(|tx| tx.write(&v, 4));
        let via_registry = lookup_runtime(rt.id()).unwrap();
        let got = via_registry.run(|tx| tx.read(&v));
        assert_eq!(got, 4);
    }

    #[test]
    fn select_returns_the_already_ready_arm() {
        let a = TmRuntime::new();
        let b = TmRuntime::new();
        let va: TVar<Option<u32>> = TVar::new(None);
        let vb: TVar<Option<u32>> = TVar::new(Some(9));
        let (winner, value) = retry_select(&mut [
            SelectArm::new(&a, |tx| match tx.read(&va)? {
                Some(v) => Ok(v),
                None => tx.retry(),
            }),
            SelectArm::new(&b, |tx| match tx.read(&vb)? {
                Some(v) => Ok(v),
                None => tx.retry(),
            }),
        ]);
        assert_eq!((winner, value), (1, 9));
        // Nothing parked and no residue on either waitlist.
        assert_eq!(a.retry_waiters(), 0);
        assert_eq!(b.retry_waiters(), 0);
    }

    #[test]
    fn earlier_arms_win_ties() {
        let a = TmRuntime::new();
        let b = TmRuntime::new();
        let va = TVar::new(1u32);
        let vb = TVar::new(2u32);
        let (winner, value) = retry_select(&mut [
            SelectArm::new(&a, |tx| tx.read(&va)),
            SelectArm::new(&b, |tx| tx.read(&vb)),
        ]);
        assert_eq!((winner, value), (0, 1));
    }

    #[test]
    fn a_commit_on_either_runtime_wakes_a_parked_select() {
        let a = TmRuntime::new();
        let b = TmRuntime::new();
        let va: TVar<Option<u32>> = TVar::new(None);
        let vb: TVar<Option<u32>> = TVar::new(None);
        let selector = {
            let (a, b) = (a.clone(), b.clone());
            let (va, vb) = (va.clone(), vb.clone());
            std::thread::spawn(move || {
                retry_select(&mut [
                    SelectArm::new(&a, |tx| match tx.read(&va)? {
                        Some(v) => Ok(v),
                        None => tx.retry(),
                    }),
                    SelectArm::new(&b, |tx| match tx.read(&vb)? {
                        Some(v) => Ok(v),
                        None => tx.retry(),
                    }),
                ])
            })
        };
        // Deterministic handshake: the parker is registered on *both*
        // runtimes' waitlists before the producer commits on the second.
        while a.retry_waiters() == 0 || b.retry_waiters() == 0 {
            std::thread::yield_now();
        }
        b.run(|tx| tx.write(&vb, Some(42)));
        assert_eq!(selector.join().unwrap(), (1, 42));
        assert_eq!(a.retry_waiters(), 0, "deregistered from the loser too");
        assert_eq!(b.retry_waiters(), 0);
        assert!(select_stats().woken >= 1, "the park was wake-ended");
    }

    #[test]
    fn deadline_select_times_out_when_nothing_commits() {
        let a = TmRuntime::new();
        let b = TmRuntime::new();
        let va: TVar<Option<u32>> = TVar::new(None);
        let vb: TVar<Option<u32>> = TVar::new(None);
        let start = Instant::now();
        let got = retry_select_deadline(
            &mut [
                SelectArm::new(&a, |tx| match tx.read(&va)? {
                    Some(v) => Ok(v),
                    None => tx.retry(),
                }),
                SelectArm::new(&b, |tx| match tx.read(&vb)? {
                    Some(v) => Ok(v),
                    None => tx.retry(),
                }),
            ],
            start + Duration::from_millis(50),
        );
        match got {
            Err(TmError::RetryTimeout { waited }) => {
                assert!(waited >= Duration::from_millis(50));
            }
            other => panic!("expected RetryTimeout, got {other:?}"),
        }
        assert_eq!(a.retry_waiters(), 0);
        assert_eq!(b.retry_waiters(), 0);
    }

    #[test]
    fn select_arms_may_write_on_their_own_runtimes() {
        // The winning arm is a full read-write transaction: its commit is
        // durable, and the losing arm's attempts left no trace.
        let a = TmRuntime::new();
        let b = TmRuntime::new();
        let gate: TVar<bool> = TVar::new(true);
        let out_a = TVar::new(0u32);
        let out_b = TVar::new(0u32);
        let (winner, ()) = retry_select(&mut [
            SelectArm::new(&a, |tx| {
                if tx.read(&gate)? {
                    tx.write(&out_a, 1)
                } else {
                    tx.retry()
                }
            }),
            SelectArm::new(&b, |tx| tx.write(&out_b, 2)),
        ]);
        assert_eq!(winner, 0);
        assert_eq!(out_a.snapshot(), 1);
        assert_eq!(out_b.snapshot(), 0, "the losing arm must not commit");
    }
}
