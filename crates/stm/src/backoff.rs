//! Bounded waiting and retry backoff, parameterized by [`WaitPolicy`].

use std::hint;
use std::thread;
use std::time::Duration;

use crate::config::WaitPolicy;

/// Pause units after which [`WaitPolicy::Parked`] escalates from spinning
/// to yielding.
const PARK_SPIN_UNTIL: u32 = 64;
/// Pause units after which [`WaitPolicy::Parked`] starts interleaving naps
/// into the yields.
const PARK_YIELD_UNTIL: u32 = 192;
/// Past the yield phase, every `PARK_NAP_EVERY`-th pause unit is a nap and
/// the rest stay yields. The bounded conflict-wait loops in `txn.rs` count
/// pause units against spin-calibrated budgets (`read_spin_budget`,
/// `lock_spin_budget`, …); naps on every unit would inflate those windows
/// ~1000× (e.g. a 2048-unit lock wait becoming ~40 ms). Interleaving keeps
/// a budgeted wait within roughly an order of magnitude of its yield-policy
/// duration while still releasing the core at a duty cycle a pure yield
/// loop never does.
const PARK_NAP_EVERY: u32 = 64;
/// Nap length once a parked waiter starts sleeping. Short enough that a
/// committing stripe owner (microseconds of work) is never over-waited by
/// much; long enough to actually leave the run queue.
pub(crate) const PARK_NAP: Duration = Duration::from_micros(20);

/// True when [`pause`] under [`WaitPolicy::Parked`] would serve this
/// iteration as a nap rather than a spin or yield. The bounded conflict
/// waits in `txn.rs` upgrade exactly these units into epoch-waits on the
/// stripe owner (same [`PARK_NAP`] deadline, but woken the moment the owner
/// finishes — see DESIGN.md §8.5).
pub(crate) fn parked_nap_due(iteration: u32) -> bool {
    iteration >= PARK_YIELD_UNTIL && iteration % PARK_NAP_EVERY == 0
}

/// Pauses once according to the waiting policy.
///
/// Under [`WaitPolicy::Preemptive`], every `YIELD_EVERY` pauses the thread
/// yields the processor so a preempted lock holder can run — the behaviour
/// SwissTM's "preemptive waiting" flag enables. Under [`WaitPolicy::Busy`]
/// the thread only executes a spin hint, reproducing busy waiting. Under
/// [`WaitPolicy::Parked`] the thread escalates spin → yield → periodic
/// naps: a yielding thread is still runnable (on an overloaded box it is
/// scheduled again just to poll), while a napping one frees its core for
/// the holder. Naps are interleaved, not continuous, so callers that count
/// pause units against a spin-calibrated budget (the bounded conflict
/// waits in `txn.rs`) keep windows of the same order of magnitude.
#[inline]
pub fn pause(policy: WaitPolicy, iteration: u32) {
    const YIELD_EVERY: u32 = 64;
    match policy {
        WaitPolicy::Preemptive => {
            if iteration % YIELD_EVERY == YIELD_EVERY - 1 {
                thread::yield_now();
            } else {
                hint::spin_loop();
            }
        }
        WaitPolicy::Busy => hint::spin_loop(),
        WaitPolicy::Parked => {
            if iteration < PARK_SPIN_UNTIL {
                hint::spin_loop();
            } else if iteration < PARK_YIELD_UNTIL || iteration % PARK_NAP_EVERY != 0 {
                thread::yield_now();
            } else {
                thread::sleep(PARK_NAP);
            }
        }
    }
}

/// Pause units of busy work (spins/yields) a single backoff may burn before
/// the remainder is converted into one sleep. `2^8`: comfortably above the
/// common case (ceiling 10 ⇒ ≤ 1024 spins, i.e. only the worst quartile of
/// jitter draws ever sleeps), decisively below an abort storm's budget.
const BACKOFF_BUSY_CAP: u64 = 1 << 8;
/// Approximate cost of one spin-loop pause unit, used to convert capped-off
/// busy work into an equivalent sleep.
const NANOS_PER_UNIT: u64 = 25;
/// Longest backoff sleep (caps pathological `consecutive_aborts`).
const MAX_BACKOFF_SLEEP: Duration = Duration::from_millis(2);

/// Waits between transaction retries after an abort.
///
/// Exponential in the number of consecutive aborts, capped at
/// `2^ceiling` pause units, with a cheap multiplicative-hash jitter so
/// threads that abort together do not retry in lockstep.
///
/// For [`WaitPolicy::Preemptive`] and [`WaitPolicy::Parked`] the *busy*
/// portion is additionally capped at [`BACKOFF_BUSY_CAP`] pause units; the
/// excess is served as a single bounded sleep, so an abort storm backs off
/// without pegging cores. [`WaitPolicy::Busy`] is deliberately exempt: it
/// is the paper's pathological baseline (Figures 8–11 measure precisely
/// what un-parked waiting costs), so its backoff must keep burning the
/// core like the original TinySTM busy-wait did.
pub fn retry_backoff(policy: WaitPolicy, consecutive_aborts: u32, ceiling: u32, seed: u64) {
    let exp = consecutive_aborts.min(ceiling);
    let max = 1u64 << exp;
    // xorshift-style jitter; avoids pulling a full RNG onto the abort path.
    let mut x = seed
        .wrapping_add(consecutive_aborts as u64)
        .wrapping_mul(0x2545_F491_4F6C_DD1D);
    x ^= x >> 33;
    let units = (x % max) + 1;
    let busy = match policy {
        WaitPolicy::Busy => units,
        WaitPolicy::Preemptive | WaitPolicy::Parked => units.min(BACKOFF_BUSY_CAP),
    };
    for i in 0..busy {
        pause(policy, i as u32);
    }
    let excess = units - busy;
    if excess > 0 {
        let nanos = (excess * NANOS_PER_UNIT).min(MAX_BACKOFF_SLEEP.as_nanos() as u64);
        thread::sleep(Duration::from_nanos(nanos));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn pause_terminates_under_all_policies() {
        for i in 0..256 {
            pause(WaitPolicy::Preemptive, i);
            pause(WaitPolicy::Busy, i);
            pause(WaitPolicy::Parked, i);
        }
    }

    #[test]
    fn backoff_terminates_even_at_ceiling() {
        retry_backoff(WaitPolicy::Busy, 100, 10, 42);
        retry_backoff(WaitPolicy::Preemptive, 0, 10, 42);
        retry_backoff(WaitPolicy::Parked, 100, 10, 42);
    }

    #[test]
    fn capped_backoff_is_time_bounded_under_abort_storms() {
        // A pathological ceiling would mean up to 2^24 spins per retry
        // uncapped; with the cap every policy except Busy must come back in
        // BUSY_CAP pauses + one ≤ 2 ms sleep. Allow generous slack for a
        // loaded CI box.
        for policy in [WaitPolicy::Preemptive, WaitPolicy::Parked] {
            let start = Instant::now();
            for storm in 0..16 {
                retry_backoff(policy, 24 + storm, 24, 7 + storm as u64);
            }
            assert!(
                start.elapsed() < Duration::from_millis(500),
                "{policy}: 16 capped backoffs must stay well under 16×(cap+2ms)"
            );
        }
    }
}
