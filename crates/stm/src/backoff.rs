//! Bounded waiting and retry backoff, parameterized by [`WaitPolicy`].

use std::hint;
use std::thread;

use crate::config::WaitPolicy;

/// Pauses once according to the waiting policy.
///
/// Under [`WaitPolicy::Preemptive`], every `YIELD_EVERY` pauses the thread
/// yields the processor so a preempted lock holder can run — the behaviour
/// SwissTM's "preemptive waiting" flag enables. Under [`WaitPolicy::Busy`]
/// the thread only executes a spin hint, reproducing busy waiting.
#[inline]
pub fn pause(policy: WaitPolicy, iteration: u32) {
    const YIELD_EVERY: u32 = 64;
    match policy {
        WaitPolicy::Preemptive => {
            if iteration % YIELD_EVERY == YIELD_EVERY - 1 {
                thread::yield_now();
            } else {
                hint::spin_loop();
            }
        }
        WaitPolicy::Busy => hint::spin_loop(),
    }
}

/// Waits between transaction retries after an abort.
///
/// Exponential in the number of consecutive aborts, capped at
/// `2^ceiling` pause units, with a cheap multiplicative-hash jitter so
/// threads that abort together do not retry in lockstep.
pub fn retry_backoff(policy: WaitPolicy, consecutive_aborts: u32, ceiling: u32, seed: u64) {
    let exp = consecutive_aborts.min(ceiling);
    let max = 1u64 << exp;
    // xorshift-style jitter; avoids pulling a full RNG onto the abort path.
    let mut x = seed
        .wrapping_add(consecutive_aborts as u64)
        .wrapping_mul(0x2545_F491_4F6C_DD1D);
    x ^= x >> 33;
    let spins = (x % max) + 1;
    for i in 0..spins {
        pause(policy, i as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pause_terminates_under_both_policies() {
        for i in 0..256 {
            pause(WaitPolicy::Preemptive, i);
            pause(WaitPolicy::Busy, i);
        }
    }

    #[test]
    fn backoff_terminates_even_at_ceiling() {
        retry_backoff(WaitPolicy::Busy, 100, 10, 42);
        retry_backoff(WaitPolicy::Preemptive, 0, 10, 42);
    }
}
