//! The global version clock.
//!
//! Both backends use a TL2-style global timestamp: transactions snapshot the
//! clock when they start, validate the versions of everything they read
//! against that snapshot, and writers advance the clock at commit to stamp
//! the ownership records they release.
//!
//! Only writers ever advance the clock. Read-only transactions
//! ([`TmRuntime::read_only`](crate::TmRuntime::read_only)) call
//! [`GlobalClock::now`] — at begin and during timestamp extension — and
//! never [`GlobalClock::tick`]: a reader takes no commit ticket, so the
//! clock cache line is written only by threads that actually publish data.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing global version clock.
///
/// The clock starts at zero; the first committing writer stamps its orecs
/// with version 1. Versions must fit in the orec version field
/// ([`crate::orec::VERSION_BITS`] bits), which allows ~10^14 commits —
/// unreachable in practice.
///
/// # Examples
///
/// ```
/// use shrink_stm::clock::GlobalClock;
///
/// let clock = GlobalClock::new();
/// let start = clock.now();
/// let commit = clock.tick();
/// assert!(commit > start);
/// ```
pub struct GlobalClock {
    now: AtomicU64,
}

impl GlobalClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        GlobalClock {
            now: AtomicU64::new(0),
        }
    }

    /// Reads the current time without advancing it.
    ///
    /// Used to take the start timestamp of a transaction and to re-snapshot
    /// during timestamp extension.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now.load(Ordering::Acquire)
    }

    /// Advances the clock by one and returns the *new* time.
    ///
    /// A committing writer calls this exactly once to obtain its commit
    /// timestamp.
    #[inline]
    pub fn tick(&self) -> u64 {
        self.now.fetch_add(1, Ordering::AcqRel) + 1
    }
}

impl Default for GlobalClock {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for GlobalClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GlobalClock")
            .field("now", &self.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn starts_at_zero() {
        assert_eq!(GlobalClock::new().now(), 0);
    }

    #[test]
    fn tick_returns_new_time() {
        let c = GlobalClock::new();
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn concurrent_ticks_are_unique() {
        let c = Arc::new(GlobalClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || (0..10_000).map(|_| c.tick()).collect::<Vec<u64>>())
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "commit timestamps must be unique");
        assert_eq!(c.now(), n as u64);
    }
}
