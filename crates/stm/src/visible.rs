//! The *visible writes* oracle.
//!
//! The paper integrates Shrink only with TMs that use visible writes: "a TM
//! uses visible writes if all threads know whenever a particular thread
//! writes to an address". This trait is that knowledge, abstracted away from
//! the concrete lock-table representation so schedulers can be tested with
//! scripted oracles.

use crate::thread::ThreadId;
use crate::varid::VarId;

/// Read-only view of which addresses are currently write-locked and by whom.
///
/// Implemented by the runtime's ownership-record table; schedulers query it
/// on transaction start to decide whether a predicted access set is *free*.
pub trait VisibleWrites: Send + Sync {
    /// True if `var` is currently being written by a thread other than `me`.
    fn is_written_by_other(&self, var: VarId, me: ThreadId) -> bool;

    /// The thread currently writing `var`, if any.
    fn writer_of(&self, var: VarId) -> Option<ThreadId>;
}

/// A scripted oracle for scheduler unit tests: the set of (var, writer)
/// pairs is fixed at construction.
#[derive(Debug, Clone, Default)]
pub struct StaticWrites {
    entries: Vec<(VarId, ThreadId)>,
}

impl StaticWrites {
    /// Creates an oracle with no writers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `writer` to be writing `var`.
    pub fn with_writer(mut self, var: VarId, writer: ThreadId) -> Self {
        self.entries.push((var, writer));
        self
    }
}

impl VisibleWrites for StaticWrites {
    fn is_written_by_other(&self, var: VarId, me: ThreadId) -> bool {
        self.entries.iter().any(|&(v, w)| v == var && w != me)
    }

    fn writer_of(&self, var: VarId) -> Option<ThreadId> {
        self.entries
            .iter()
            .find(|&&(v, _)| v == var)
            .map(|&(_, w)| w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_oracle_reports_scripted_writers() {
        let v1 = VarId::from_u64(1);
        let v2 = VarId::from_u64(2);
        let w = ThreadId::from_raw(4);
        let oracle = StaticWrites::new().with_writer(v1, w);
        assert!(oracle.is_written_by_other(v1, ThreadId::from_raw(1)));
        assert!(
            !oracle.is_written_by_other(v1, w),
            "own write is not a conflict"
        );
        assert!(!oracle.is_written_by_other(v2, ThreadId::from_raw(1)));
        assert_eq!(oracle.writer_of(v1), Some(w));
        assert_eq!(oracle.writer_of(v2), None);
    }
}
