//! Commit/abort statistics.
//!
//! The throughput and abort-rate numbers behind every figure in the paper
//! come from these counters. Counting happens with relaxed atomics on the
//! transacting threads; [`TmStats`] is a consistent-enough snapshot taken by
//! whoever asks.

use std::fmt;

use crate::thread::ThreadId;

/// Counters of a single thread at snapshot time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadStats {
    /// Which thread these counters belong to.
    pub thread: ThreadId,
    /// Committed transactions.
    pub commits: u64,
    /// Aborted attempts.
    pub aborts: u64,
    /// Attempts that ended in [`Tx::retry`](crate::Tx::retry) (whether the
    /// round then parked, found its snapshot already stale, or exhausted
    /// the attempt budget — [`RetryStats`](crate::RetryStats) breaks the
    /// wait outcomes down). Deliberate blocking is not a conflict: it is
    /// counted here, never in `aborts`.
    pub retry_waits: u64,
    /// Read-only transactions completed via
    /// [`TmRuntime::read_only`](crate::TmRuntime::read_only). Counted apart
    /// from `commits`: a read-only transaction never competes for orecs, so
    /// it must not inflate the success rates that scheduler policies
    /// (Shrink's success-rate decay, ATS's contention intensity) feed on.
    pub ro_commits: u64,
    /// Individual reads performed inside read-only transactions.
    pub ro_reads: u64,
    /// Read-only snapshot revalidations: timestamp extensions plus
    /// whole-body restarts forced by concurrent writers. Never counted as
    /// aborts.
    pub ro_revalidations: u64,
    /// Orec stripes write-locked by this thread. Zero for a pure reader —
    /// the lock-free read-only claim, asserted by tests.
    pub orec_acquires: u64,
}

impl ThreadStats {
    /// Commits divided by total attempts; 1.0 for an idle thread.
    ///
    /// Read-only transactions are excluded on both sides of the ratio: they
    /// can neither abort nor cause aborts, so they carry no information
    /// about conflict pressure.
    pub fn success_ratio(&self) -> f64 {
        let total = self.commits + self.aborts;
        if total == 0 {
            1.0
        } else {
            self.commits as f64 / total as f64
        }
    }
}

/// Aggregate snapshot over all registered threads.
///
/// # Examples
///
/// ```
/// use shrink_stm::TmRuntime;
///
/// let rt = TmRuntime::new();
/// let v = shrink_stm::TVar::new(1u32);
/// let _: u32 = rt.run(|tx| tx.read(&v));
/// assert_eq!(rt.stats().commits, 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TmStats {
    /// Total committed transactions.
    pub commits: u64,
    /// Total aborted attempts.
    pub aborts: u64,
    /// Total attempts that ended in [`Tx::retry`](crate::Tx::retry)
    /// (deliberate blocking, counted apart from conflict aborts).
    pub retry_waits: u64,
    /// Total read-only transactions completed
    /// ([`TmRuntime::read_only`](crate::TmRuntime::read_only)); kept apart
    /// from `commits` so conflict accounting stays read-write only.
    pub ro_commits: u64,
    /// Total reads performed inside read-only transactions.
    pub ro_reads: u64,
    /// Total read-only snapshot revalidations (extensions + restarts).
    pub ro_revalidations: u64,
    /// Total orec stripes write-locked across all threads.
    pub orec_acquires: u64,
    /// Per-thread breakdown.
    pub per_thread: Vec<ThreadStats>,
}

impl TmStats {
    /// Aggregates per-thread counters.
    pub fn from_threads(per_thread: Vec<ThreadStats>) -> Self {
        let commits = per_thread.iter().map(|t| t.commits).sum();
        let aborts = per_thread.iter().map(|t| t.aborts).sum();
        let retry_waits = per_thread.iter().map(|t| t.retry_waits).sum();
        let ro_commits = per_thread.iter().map(|t| t.ro_commits).sum();
        let ro_reads = per_thread.iter().map(|t| t.ro_reads).sum();
        let ro_revalidations = per_thread.iter().map(|t| t.ro_revalidations).sum();
        let orec_acquires = per_thread.iter().map(|t| t.orec_acquires).sum();
        TmStats {
            commits,
            aborts,
            retry_waits,
            ro_commits,
            ro_reads,
            ro_revalidations,
            orec_acquires,
            per_thread,
        }
    }

    /// Aborts per commit (the paper's "wasted work" proxy). Zero when no
    /// transaction committed.
    pub fn aborts_per_commit(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.aborts as f64 / self.commits as f64
        }
    }

    /// Commits divided by total attempts; 1.0 when nothing ran.
    pub fn success_ratio(&self) -> f64 {
        let total = self.commits + self.aborts;
        if total == 0 {
            1.0
        } else {
            self.commits as f64 / total as f64
        }
    }

    /// Difference against an earlier snapshot of the same runtime.
    ///
    /// Used by the throughput harness: snapshot, run for a wall-clock
    /// window, snapshot again, divide.
    pub fn since(&self, earlier: &TmStats) -> TmStats {
        TmStats {
            commits: self.commits.saturating_sub(earlier.commits),
            aborts: self.aborts.saturating_sub(earlier.aborts),
            retry_waits: self.retry_waits.saturating_sub(earlier.retry_waits),
            ro_commits: self.ro_commits.saturating_sub(earlier.ro_commits),
            ro_reads: self.ro_reads.saturating_sub(earlier.ro_reads),
            ro_revalidations: self
                .ro_revalidations
                .saturating_sub(earlier.ro_revalidations),
            orec_acquires: self.orec_acquires.saturating_sub(earlier.orec_acquires),
            per_thread: Vec::new(),
        }
    }
}

impl fmt::Display for TmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} commits, {} aborts ({:.2} aborts/commit)",
            self.commits,
            self.aborts,
            self.aborts_per_commit()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(thread: u16, commits: u64, aborts: u64) -> ThreadStats {
        ThreadStats {
            thread: ThreadId::from_raw(thread),
            commits,
            aborts,
            retry_waits: 0,
            ro_commits: 0,
            ro_reads: 0,
            ro_revalidations: 0,
            orec_acquires: 0,
        }
    }

    #[test]
    fn aggregation_sums_threads() {
        let s = TmStats::from_threads(vec![ts(1, 10, 2), ts(2, 5, 3)]);
        assert_eq!(s.commits, 15);
        assert_eq!(s.aborts, 5);
        assert!((s.aborts_per_commit() - 5.0 / 15.0).abs() < 1e-12);
        assert!((s.success_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_neutral_ratios() {
        let s = TmStats::default();
        assert_eq!(s.aborts_per_commit(), 0.0);
        assert_eq!(s.success_ratio(), 1.0);
    }

    #[test]
    fn since_subtracts_counters() {
        let early = TmStats::from_threads(vec![ts(1, 10, 4)]);
        let late = TmStats::from_threads(vec![ts(1, 25, 9)]);
        let d = late.since(&early);
        assert_eq!(d.commits, 15);
        assert_eq!(d.aborts, 5);
    }

    #[test]
    fn retry_waits_aggregate_apart_from_aborts() {
        let mut a = ts(1, 10, 2);
        a.retry_waits = 7;
        let mut b = ts(2, 5, 0);
        b.retry_waits = 3;
        let s = TmStats::from_threads(vec![a, b]);
        assert_eq!(s.retry_waits, 10);
        assert_eq!(s.aborts, 2, "deliberate waits are not aborts");
        let early = TmStats {
            retry_waits: 4,
            ..TmStats::default()
        };
        assert_eq!(s.since(&early).retry_waits, 6);
    }

    #[test]
    fn read_only_counters_stay_out_of_conflict_accounting() {
        let mut a = ts(1, 10, 2);
        a.ro_commits = 100;
        a.ro_reads = 3200;
        a.ro_revalidations = 5;
        a.orec_acquires = 12;
        let mut b = ts(2, 0, 0);
        b.ro_commits = 50;
        b.ro_reads = 1600;
        let s = TmStats::from_threads(vec![a, b]);
        assert_eq!(s.ro_commits, 150);
        assert_eq!(s.ro_reads, 4800);
        assert_eq!(s.ro_revalidations, 5);
        assert_eq!(s.orec_acquires, 12);
        // The conflict-facing ratios never see read-only traffic.
        assert_eq!(s.commits, 10);
        assert_eq!(s.aborts, 2);
        assert!((s.success_ratio() - 10.0 / 12.0).abs() < 1e-12);
        assert_eq!(b.success_ratio(), 1.0, "pure reader is neutral");
        let early = TmStats {
            ro_commits: 30,
            ro_reads: 800,
            ..TmStats::default()
        };
        let d = s.since(&early);
        assert_eq!(d.ro_commits, 120);
        assert_eq!(d.ro_reads, 4000);
    }

    #[test]
    fn thread_success_ratio() {
        assert_eq!(ts(1, 0, 0).success_ratio(), 1.0);
        assert!((ts(1, 3, 1).success_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn display_is_informative() {
        let s = TmStats::from_threads(vec![ts(1, 4, 2)]);
        let text = s.to_string();
        assert!(text.contains("4 commits"), "{text}");
        assert!(text.contains("2 aborts"), "{text}");
    }
}
