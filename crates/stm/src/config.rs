//! Runtime configuration: backend selection, waiting policy and tuning knobs.

use std::fmt;
use std::time::Duration;

/// Which conflict-detection protocol the runtime uses.
///
/// Both backends acquire write locks eagerly (so writes are *visible*, as
/// Shrink requires), buffer written values, and install them at commit under
/// a TL2-style global clock. They differ in how conflicts are handled, which
/// is what produces the paper's contrasting throughput curves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// SwissTM-like: readers may read *through* a write lock until the owner
    /// starts committing; write/write conflicts go through a two-phase
    /// contention manager (timid below a work threshold, greedy above, with
    /// remote kill of the lighter transaction).
    #[default]
    Swiss,
    /// TinySTM-like (version 0.9.5 semantics): encounter-time locking with
    /// bounded busy-waiting on locked stripes and suicide on write/write
    /// conflicts. Degrades steeply when overloaded — the behaviour Figures
    /// 8, 10 and 11 of the paper rely on.
    Tiny,
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendKind::Swiss => f.write_str("swiss"),
            BackendKind::Tiny => f.write_str("tiny"),
        }
    }
}

/// What a thread does while it waits (for a committing stripe, a kill to
/// take effect, or between retries).
///
/// The paper evaluates SwissTM under both policies: Figure 5 uses
/// *preemptive* waiting, the appendix's Figure 9 uses *busy* waiting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum WaitPolicy {
    /// Yield the processor while waiting (`std::thread::yield_now`), so
    /// waiting threads release their core in overloaded systems.
    #[default]
    Preemptive,
    /// Spin without yielding. Threads that wait do not release the
    /// processor, which wastes whole scheduling quanta once the system is
    /// overloaded.
    Busy,
    /// Spin briefly, yield briefly, then *sleep* in escalating naps (and cap
    /// the busy portion of retry backoff). Goes beyond the paper's two
    /// policies: where `Preemptive` still keeps every waiter runnable —
    /// re-entering the scheduler's queue just to poll again — `Parked`
    /// waiters leave the run queue entirely, which is what lets serialized
    /// overloaded workloads stop burning the cores the lock holder needs.
    ///
    /// Since the epoch-futex work (DESIGN.md §8.5) the nap units of a
    /// bounded conflict wait park on the stripe owner's *attempt epoch*
    /// rather than sleeping blind: the waiter is woken the moment the owner
    /// commits or aborts, instead of oversleeping a fixed nap.
    Parked,
}

impl fmt::Display for WaitPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitPolicy::Preemptive => f.write_str("preemptive"),
            WaitPolicy::Busy => f.write_str("busy"),
            WaitPolicy::Parked => f.write_str("parked"),
        }
    }
}

/// What a transaction is declared to be: a full read-write transaction, or
/// a lock-free read-only one.
///
/// Read-only transactions (started via
/// [`TmRuntime::read_only`](crate::TmRuntime::read_only)) snapshot the
/// global clock once, read versioned cells through the seqlock fast path
/// and revalidate per read. They acquire no orecs, take no commit ticket,
/// register on no waitlist, and are invisible to the schedulers: hooks see
/// the kind in [`SchedCtx`](crate::sched::SchedCtx) and skip conflict
/// bookkeeping for [`TxnKind::ReadOnly`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum TxnKind {
    /// A normal transaction: may write, acquires orec stripes eagerly and
    /// commits under the global clock.
    #[default]
    ReadWrite,
    /// A declared read-only transaction: never locks, never aborts a
    /// writer, restarts itself on snapshot invalidation.
    ReadOnly,
}

impl TxnKind {
    /// `true` for [`TxnKind::ReadOnly`].
    pub fn is_read_only(self) -> bool {
        matches!(self, TxnKind::ReadOnly)
    }
}

impl fmt::Display for TxnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnKind::ReadWrite => f.write_str("read-write"),
            TxnKind::ReadOnly => f.write_str("read-only"),
        }
    }
}

/// How write/write conflicts are resolved — the *contention manager*.
///
/// The paper contrasts schedulers with classic CMs (Polite, Karma, Greedy)
/// that "play their role only after conflicts have been detected"; this
/// enum makes those policies selectable so the contrast can be measured.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum CmPolicy {
    /// Use the backend's native policy: two-phase for
    /// [`BackendKind::Swiss`], suicide-after-spin for [`BackendKind::Tiny`].
    #[default]
    BackendDefault,
    /// SwissTM's two-phase manager: abort self while young (below the timid
    /// threshold), then compare work done and remotely kill the lighter
    /// transaction.
    TwoPhase,
    /// Abort self immediately after a bounded busy-wait (TinySTM style).
    Suicide,
    /// Polite (Scherer & Scott): exponentially backed-off re-attempts of
    /// the acquisition, aborting self only after the patience runs out.
    Polite,
    /// Karma-flavoured: work done (accesses) is priority; the lighter
    /// transaction loses, remotely killed if it holds the lock.
    Karma,
}

impl fmt::Display for CmPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmPolicy::BackendDefault => "backend-default",
            CmPolicy::TwoPhase => "two-phase",
            CmPolicy::Suicide => "suicide",
            CmPolicy::Polite => "polite",
            CmPolicy::Karma => "karma",
        };
        f.write_str(s)
    }
}

/// Tuning knobs of a [`TmRuntime`](crate::TmRuntime).
///
/// Construct via [`TmRuntime::builder`](crate::TmRuntime::builder); the
/// defaults reproduce the paper's setup.
#[derive(Clone, Debug)]
pub struct TmConfig {
    /// Conflict-detection protocol.
    pub backend: BackendKind,
    /// Waiting behaviour.
    pub wait_policy: WaitPolicy,
    /// Stripes in the ownership-record table (rounded to a power of two).
    pub orec_table_size: usize,
    /// Spins a reader grants a committing writer before retrying the read.
    pub read_spin_budget: u32,
    /// Spins a Tiny-backend transaction waits on a locked stripe before
    /// aborting itself (TinySTM's busy-wait window).
    pub lock_spin_budget: u32,
    /// Accesses below which a Swiss transaction loses write/write conflicts
    /// without a fight (the "timid" first phase of the two-phase CM).
    pub cm_timid_threshold: u64,
    /// Spins a Swiss transaction waits for a killed victim to release its
    /// locks before giving up and aborting itself.
    pub kill_wait_budget: u32,
    /// Maximum consecutive aborts before the retry backoff saturates.
    pub backoff_ceiling: u32,
    /// Write/write conflict resolution policy.
    pub cm_policy: CmPolicy,
    /// Backed-off re-attempts Polite makes before aborting.
    pub polite_retries: u32,
    /// Longest one parked [`Tx::retry`](crate::Tx::retry) round sleeps
    /// before revalidating its read snapshot. The wake normally comes from
    /// a committer writing a watched stripe (DESIGN.md §9); the deadline is
    /// the safety net against waits nothing will ever satisfy (an empty
    /// read set, a wait-bucket alias race) and what bounds
    /// [`run_budgeted`](crate::TmRuntime::run_budgeted) on a permanently
    /// blocked transaction.
    ///
    /// # Round semantics, thread-parked vs. async
    ///
    /// This is the authoritative description of how `retry_wait` interacts
    /// with the two blocking modes and with
    /// [`run_with_deadline`](crate::TmRuntime::run_with_deadline):
    ///
    /// * **Thread-parked round** ([`TmRuntime::run`](crate::TmRuntime::run)
    ///   and friends): each retry round parks the OS thread for at most
    ///   `retry_wait`, then re-runs the body regardless — a bounded
    ///   sleep-revalidate loop. Under `run_with_deadline` every round's
    ///   bound is *clamped per round* to `min(now + retry_wait, deadline)`,
    ///   so a 30 s `retry_wait` never overshoots a 50 ms deadline; once the
    ///   deadline passes, a round that timed out with nothing new returns
    ///   [`TmError::RetryTimeout`](crate::TmError::RetryTimeout).
    /// * **Async round**
    ///   ([`atomically_async`](crate::future::atomically_async)): a
    ///   suspended [`TxFuture`](crate::future::TxFuture) consumes no thread,
    ///   so there is nothing to time out — `retry_wait` is **not consulted**.
    ///   The future re-polls only when a commit bumps a watched stripe (or
    ///   when its executor polls it spuriously, which just revalidates and
    ///   re-suspends). The safety-net role `retry_wait` plays for threads is
    ///   unnecessary there: bucket aliasing can only cause spurious wakes,
    ///   never missed ones, and a retry with an *empty* read set — the one
    ///   wait no commit can ever satisfy — pends forever, which is the
    ///   documented contract for that body bug. Callers who want a bounded
    ///   async wait should race the future against their executor's timer.
    pub retry_wait: Duration,
}

impl Default for TmConfig {
    fn default() -> Self {
        TmConfig {
            backend: BackendKind::Swiss,
            wait_policy: WaitPolicy::Preemptive,
            orec_table_size: 1 << 16,
            read_spin_budget: 512,
            lock_spin_budget: 2048,
            cm_timid_threshold: 32,
            kill_wait_budget: 4096,
            backoff_ceiling: 10,
            cm_policy: CmPolicy::BackendDefault,
            polite_retries: 6,
            retry_wait: Duration::from_millis(10),
        }
    }
}

impl TmConfig {
    /// The conflict policy actually in force, with backend defaults
    /// resolved.
    pub fn effective_cm(&self) -> CmPolicy {
        match self.cm_policy {
            CmPolicy::BackendDefault => match self.backend {
                BackendKind::Swiss => CmPolicy::TwoPhase,
                BackendKind::Tiny => CmPolicy::Suicide,
            },
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = TmConfig::default();
        assert_eq!(c.backend, BackendKind::Swiss);
        assert_eq!(c.wait_policy, WaitPolicy::Preemptive);
        assert!(c.orec_table_size.is_power_of_two());
        assert!(c.read_spin_budget > 0);
        assert!(c.lock_spin_budget > 0);
        assert!(c.retry_wait > Duration::ZERO);
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(BackendKind::Swiss.to_string(), "swiss");
        assert_eq!(BackendKind::Tiny.to_string(), "tiny");
        assert_eq!(WaitPolicy::Preemptive.to_string(), "preemptive");
        assert_eq!(WaitPolicy::Busy.to_string(), "busy");
        assert_eq!(WaitPolicy::Parked.to_string(), "parked");
        assert_eq!(CmPolicy::Karma.to_string(), "karma");
        assert_eq!(CmPolicy::default().to_string(), "backend-default");
        assert_eq!(TxnKind::ReadWrite.to_string(), "read-write");
        assert_eq!(TxnKind::ReadOnly.to_string(), "read-only");
    }

    #[test]
    fn txn_kind_defaults_to_read_write() {
        assert_eq!(TxnKind::default(), TxnKind::ReadWrite);
        assert!(!TxnKind::ReadWrite.is_read_only());
        assert!(TxnKind::ReadOnly.is_read_only());
    }

    #[test]
    fn backend_defaults_resolve_to_native_policies() {
        let mut c = TmConfig::default();
        assert_eq!(c.effective_cm(), CmPolicy::TwoPhase);
        c.backend = BackendKind::Tiny;
        assert_eq!(c.effective_cm(), CmPolicy::Suicide);
        c.cm_policy = CmPolicy::Polite;
        assert_eq!(c.effective_cm(), CmPolicy::Polite);
    }
}
