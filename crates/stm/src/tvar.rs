//! Transactional variables.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::cell::ValueCell;
use crate::varid::VarId;

/// Marker trait for types that can live in a [`TVar`].
///
/// Blanket-implemented; listed explicitly so the requirements show up in
/// one place: values are cloned out on read, sent across threads by the
/// commit protocol, and (on the boxed storage path) destroyed by deferred
/// epoch reclamation, possibly on another thread.
pub trait TxValue: Clone + Send + Sync + 'static {}

impl<T: Clone + Send + Sync + 'static> TxValue for T {}

pub(crate) struct TVarInner<T> {
    pub(crate) id: VarId,
    pub(crate) cell: ValueCell<T>,
    /// Id of the [`TmRuntime`](crate::TmRuntime) this variable is bound to;
    /// 0 until the first transactional access binds it. Orec striping and
    /// retry waitlists are per-runtime, so a variable used through two
    /// runtimes would validate against the wrong orec table and park on a
    /// waitlist no committer ever notifies — transactional paths check this
    /// stamp and reject foreign access with a typed error instead.
    owner: AtomicU64,
}

impl<T> TVarInner<T> {
    /// Binds the variable to runtime `rt` if unbound, or checks the stamp.
    /// `Err` carries the owning runtime's id on a cross-runtime access.
    #[inline]
    pub(crate) fn bind_owner(&self, rt: u64) -> Result<(), u64> {
        let cur = self.owner.load(Ordering::Relaxed);
        if cur == rt {
            return Ok(());
        }
        if cur == 0 {
            return match self
                .owner
                .compare_exchange(0, rt, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => Ok(()),
                Err(actual) if actual == rt => Ok(()),
                Err(actual) => Err(actual),
            };
        }
        Err(cur)
    }

    /// The bound runtime id, if any.
    pub(crate) fn owner_id(&self) -> Option<u64> {
        match self.owner.load(Ordering::Relaxed) {
            0 => None,
            id => Some(id),
        }
    }
}

/// A transactional variable: a shared cell readable and writable inside
/// transactions.
///
/// `TVar<T>` is a cheap handle (an `Arc` internally); clone it freely to
/// share between threads. For large payloads store an `Arc<Payload>` inside
/// the `TVar` so that reads clone a pointer, not the payload.
///
/// Three read paths, in increasing consistency: [`TVar::snapshot`] (latest
/// committed value, no cross-variable consistency),
/// [`TmRuntime::read_only`](crate::TmRuntime::read_only) (consistent
/// multi-variable snapshot, lock-free, no locks taken), and a full
/// [`TmRuntime::run`](crate::TmRuntime::run) transaction (consistent and
/// composable with writes/blocking).
///
/// # Examples
///
/// ```
/// use shrink_stm::{TmRuntime, TVar};
///
/// let rt = TmRuntime::new();
/// let acc_a = TVar::new(100i64);
/// let acc_b = TVar::new(0i64);
///
/// // Transfer 30 from A to B, atomically.
/// rt.run(|tx| {
///     let a = tx.read(&acc_a)?;
///     let b = tx.read(&acc_b)?;
///     tx.write(&acc_a, a - 30)?;
///     tx.write(&acc_b, b + 30)
/// });
///
/// assert_eq!(acc_a.snapshot(), 70);
/// assert_eq!(acc_b.snapshot(), 30);
/// ```
pub struct TVar<T> {
    pub(crate) inner: Arc<TVarInner<T>>,
}

impl<T: TxValue> TVar<T> {
    /// Creates a new transactional variable holding `value`.
    pub fn new(value: T) -> Self {
        TVar {
            inner: Arc::new(TVarInner {
                id: VarId::fresh(),
                cell: ValueCell::new(value),
                owner: AtomicU64::new(0),
            }),
        }
    }

    /// Id of the [`TmRuntime`](crate::TmRuntime) this variable is bound to,
    /// or `None` before its first transactional access. Diagnostic companion
    /// to the [`TmError::ForeignTVar`](crate::TmError::ForeignTVar)
    /// contract: a variable binds to the first runtime that reads or writes
    /// it transactionally and every later access must come through that
    /// runtime ([`TVar::snapshot`] stays runtime-free).
    pub fn owner_runtime(&self) -> Option<u64> {
        self.inner.owner_id()
    }

    /// The stable identifier of this variable (the "address" that schedulers
    /// predict and the orec table stripes on).
    pub fn id(&self) -> VarId {
        self.inner.id
    }

    /// Reads the latest installed value *outside* any transaction.
    ///
    /// This is atomic for the single variable but provides no consistency
    /// across variables; use a transaction for multi-variable reads. Intended
    /// for post-run verification and monitoring.
    ///
    /// The read is lock-free on both storage paths: a seqlock word copy for
    /// small dropless types, an epoch-pinned atomic pointer load otherwise
    /// (see DESIGN.md §7). No mutex or rwlock is acquired.
    pub fn snapshot(&self) -> T {
        self.inner.cell.load()
    }

    /// True when this variable's values live inline in the cell (seqlock
    /// fast path: no heap indirection or epoch pin on reads). Diagnostic,
    /// for tests and benchmarks asserting which read path a type takes.
    pub fn uses_inline_storage(&self) -> bool {
        self.inner.cell.is_inline()
    }
}

impl<T> Clone for TVar<T> {
    fn clone(&self) -> Self {
        TVar {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for TVar<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TVar({})", self.inner.id)
    }
}

impl<T: TxValue + Default> Default for TVar<T> {
    fn default() -> Self {
        TVar::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_tvar_holds_value_and_fresh_id() {
        let a = TVar::new(5u32);
        let b = TVar::new(6u32);
        assert_eq!(a.snapshot(), 5);
        assert_eq!(b.snapshot(), 6);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn clones_share_identity_and_storage() {
        let a = TVar::new(String::from("x"));
        let b = a.clone();
        assert_eq!(a.id(), b.id());
        a.inner.cell.store(String::from("y"));
        assert_eq!(b.snapshot(), "y");
    }

    #[test]
    fn default_uses_value_default() {
        let v: TVar<u64> = TVar::default();
        assert_eq!(v.snapshot(), 0);
    }

    #[test]
    fn debug_shows_id() {
        let v = TVar::new(1u8);
        assert!(format!("{v:?}").starts_with("TVar(v"));
    }

    #[test]
    fn storage_path_matches_payload_shape() {
        assert!(TVar::new(0u64).uses_inline_storage());
        assert!(TVar::new((1u64, 2u64)).uses_inline_storage());
        assert!(!TVar::new(String::new()).uses_inline_storage());
        assert!(!TVar::new(vec![0u8; 4]).uses_inline_storage());
    }

    #[test]
    fn tvar_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TVar<u64>>();
        assert_send_sync::<TVar<Vec<String>>>();
    }
}
