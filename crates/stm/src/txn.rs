//! The transaction engine: read/write protocol, validation, commit and
//! rollback for both backends.
//!
//! Common skeleton (TL2/TinySTM family):
//!
//! * transactions snapshot the global clock at start (`start_ts`);
//! * reads validate the guarding orec's version against `start_ts`,
//!   *extending* the snapshot (revalidating the whole read log against the
//!   current clock) when they encounter newer data;
//! * writes acquire the orec eagerly — making the write **visible** to every
//!   other thread, as Shrink requires — and buffer the value in a write log;
//! * commit stamps a fresh clock value, validates the read log once more and
//!   installs buffered values.
//!
//! Value snapshots (`ValueCell::load`) are lock-free on both storage paths
//! (inline seqlock or epoch-pinned pointer load; see DESIGN.md §7), so the
//! per-read cost on top of them is exactly the orec snapshot/validate pair
//! below — the overhead budget the paper's ~13 % Shrink figure rides on.
//!
//! Backend differences (see [`BackendKind`]):
//!
//! * **Swiss** — readers read *through* a write lock until the owner begins
//!   committing (write/read conflicts are resolved lazily, at commit), and
//!   write/write conflicts go through a two-phase contention manager: timid
//!   (self-abort) while the transaction is small, greedy (kill the lighter
//!   transaction) afterwards.
//! * **Tiny** — readers and writers busy-wait on locked stripes with a
//!   bounded spin budget and abort when it is exhausted (encounter-time
//!   locking with suicide resolution).

use std::any::Any;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

use crate::backoff::{parked_nap_due, pause, PARK_NAP};
use crate::config::{BackendKind, CmPolicy, TxnKind, WaitPolicy};
use crate::error::{Abort, AbortReason, TxResult};
use crate::faults::FaultSite;
use crate::orec::OrecSnapshot;
use crate::runtime::RuntimeInner;
use crate::sched::SchedCtx;
use crate::thread::{ThreadCtx, ThreadId};
use crate::tvar::{TVar, TVarInner, TxValue};
use crate::varid::VarId;

/// One validated read: which stripe, and the version it had when read.
#[derive(Clone, Copy, Debug)]
struct ReadEntry {
    orec: usize,
    version: u64,
}

/// A buffered write that can be installed at commit.
trait PendingWrite: Send {
    fn install(&self);
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// A boxed clone of this entry, for checkpoint undo records: an
    /// [`or_else`](Tx::or_else) branch that overwrites a pre-branch entry
    /// must be able to restore the old buffered value on rollback.
    fn snapshot_entry(&self) -> Box<dyn PendingWrite>;
}

struct TypedWrite<T> {
    target: Arc<TVarInner<T>>,
    value: T,
}

impl<T: TxValue> PendingWrite for TypedWrite<T> {
    fn install(&self) {
        self.target.cell.store(self.value.clone());
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }

    fn snapshot_entry(&self) -> Box<dyn PendingWrite> {
        Box::new(TypedWrite {
            target: Arc::clone(&self.target),
            value: self.value.clone(),
        })
    }
}

/// A rollback point inside one transaction attempt, pushed by
/// [`Tx::or_else`] around its first branch (DESIGN.md §9).
///
/// Rolling back to a checkpoint undoes everything the branch *wrote* —
/// write-log entries are truncated, overwritten pre-branch entries are
/// restored from `overwrites`, and stripes first acquired inside the branch
/// are released — while the branch's *reads* are deliberately kept: they
/// were real reads of the snapshot, keeping them validates the alternative
/// branch against the same consistency, and a [`Tx::retry`] that escapes
/// both branches must park on the union of both read sets.
struct Checkpoint {
    write_log_len: usize,
    write_vars_len: usize,
    owned_len: usize,
    /// Pre-branch values of write-log entries the branch overwrote in
    /// place, saved lazily at first overwrite: `(write_log index, entry as
    /// it was when this checkpoint was live)`.
    overwrites: Vec<(usize, Box<dyn PendingWrite>)>,
}

/// Details of a rejected cross-runtime access, recorded by the owner check
/// so the retry loop can build the full
/// [`TmError::ForeignTVar`](crate::error::TmError) (the [`Abort`] itself
/// only carries the reason).
#[derive(Clone, Copy, Debug)]
pub(crate) struct ForeignAccess {
    pub(crate) var: VarId,
    pub(crate) owner: u64,
}

/// An in-flight transaction attempt.
///
/// Handed to the body closure by [`TmRuntime::run`](crate::TmRuntime::run);
/// all transactional operations return [`TxResult`] so the body can
/// propagate aborts with `?`.
pub struct Tx<'rt> {
    rt: &'rt RuntimeInner,
    ctx: &'rt ThreadCtx,
    me: ThreadId,
    start_ts: u64,
    read_log: Vec<ReadEntry>,
    /// Every dynamic read, in order (may contain duplicates).
    read_vars: Vec<VarId>,
    write_log: Vec<Box<dyn PendingWrite>>,
    /// Distinct written variables, in first-write order.
    write_vars: Vec<VarId>,
    write_index: HashMap<VarId, usize>,
    owned_orecs: HashSet<usize>,
    owned_order: Vec<usize>,
    /// Active [`or_else`](Tx::or_else) rollback points, innermost last.
    checkpoints: Vec<Checkpoint>,
    /// Set when the body touched a `TVar` bound to another runtime.
    foreign: Option<ForeignAccess>,
    finished: bool,
}

impl<'rt> Tx<'rt> {
    pub(crate) fn begin(rt: &'rt RuntimeInner, ctx: &'rt ThreadCtx) -> Self {
        ctx.reset_accesses();
        // Drop any kill request aimed at a previous attempt.
        let _ = ctx.take_kill_request();
        Tx {
            rt,
            ctx,
            me: ctx.id(),
            start_ts: rt.clock.now(),
            read_log: Vec::new(),
            read_vars: Vec::new(),
            write_log: Vec::new(),
            write_vars: Vec::new(),
            write_index: HashMap::new(),
            owned_orecs: HashSet::new(),
            owned_order: Vec::new(),
            checkpoints: Vec::new(),
            foreign: None,
            finished: false,
        }
    }

    /// The id of the thread running this transaction.
    pub fn thread(&self) -> ThreadId {
        self.me
    }

    /// Number of dynamic reads so far.
    pub fn read_count(&self) -> usize {
        self.read_vars.len()
    }

    /// Number of distinct variables written so far.
    pub fn write_count(&self) -> usize {
        self.write_vars.len()
    }

    /// The snapshot timestamp the attempt currently validates against.
    pub fn start_timestamp(&self) -> u64 {
        self.start_ts
    }

    /// Requests an abort-and-retry of this attempt.
    ///
    /// # Errors
    ///
    /// Always returns `Err` with [`AbortReason::UserRestart`]; intended to be
    /// propagated with `?` or returned directly from the body.
    pub fn restart<T>(&self) -> TxResult<T> {
        Err(Abort::new(AbortReason::UserRestart))
    }

    /// Blocks this transaction until its read set changes.
    ///
    /// The Haskell-STM `retry` operator: the body declares that the current
    /// snapshot does not let it proceed (a queue is empty, a predicate is
    /// false). Inside [`Tx::or_else`] the nearest enclosing `or_else`
    /// catches it and runs the alternative branch; otherwise the runtime
    /// rolls the attempt back, releases every stripe lock, and **parks**
    /// the thread on the per-stripe commit event counts of everything the
    /// attempt read — it sleeps in the kernel until a committer overwrites
    /// one of those stripes (or a bounded deadline revalidates), never
    /// yield-polling (DESIGN.md §9).
    ///
    /// A `retry` with an *empty* read set can never be woken by a commit;
    /// it blocks in bounded [`retry_wait`](crate::TmConfig::retry_wait)
    /// rounds instead of forever, but is almost certainly a bug in the
    /// body.
    ///
    /// # Errors
    ///
    /// Always returns `Err` with [`AbortReason::Retry`]; intended to be
    /// propagated with `?` or returned directly from the body.
    ///
    /// # Examples
    ///
    /// ```
    /// use shrink_stm::{TmRuntime, TVar, TxResult};
    ///
    /// let rt = TmRuntime::new();
    /// let ready = TVar::new(false);
    /// let flag = ready.clone();
    /// let setter = {
    ///     let rt = rt.clone();
    ///     std::thread::spawn(move || {
    ///         std::thread::sleep(std::time::Duration::from_millis(5));
    ///         rt.run(|tx| tx.write(&flag, true));
    ///     })
    /// };
    /// // Blocks (parked) until the setter's commit flips the flag.
    /// rt.run(|tx| {
    ///     if !tx.read(&ready)? {
    ///         return tx.retry();
    ///     }
    ///     Ok(())
    /// });
    /// setter.join().unwrap();
    /// ```
    pub fn retry<T>(&self) -> TxResult<T> {
        Err(Abort::retry())
    }

    /// Runs `first`; if it ends in [`Tx::retry`], rolls back *only its
    /// writes* and runs `second` instead.
    ///
    /// The Haskell-STM `orElse` combinator, and the reason `retry` composes:
    /// alternatives nest arbitrarily (`or_else` inside either branch works)
    /// and the whole composition is still one atomic transaction. Semantics:
    ///
    /// * Writes made by a retried `first` never become visible — buffered
    ///   entries are dropped, overwritten pre-branch entries restored, and
    ///   stripes first locked inside the branch released.
    /// * Reads made by `first` stay in the read set: the transaction
    ///   validates against them, and if `second` also retries, the thread
    ///   parks on the **union** of both branches' read sets (either branch
    ///   becoming runnable wakes it).
    /// * Any non-`retry` abort (conflict, validation, kill) propagates and
    ///   restarts the whole transaction, exactly as outside `or_else`.
    ///
    /// # Errors
    ///
    /// Propagates `second`'s result when `first` retries, and any
    /// non-`retry` abort of either branch.
    ///
    /// # Examples
    ///
    /// ```
    /// use shrink_stm::{TmRuntime, TVar, TxResult};
    ///
    /// let rt = TmRuntime::new();
    /// let primary: TVar<Option<u32>> = TVar::new(None);
    /// let fallback: TVar<Option<u32>> = TVar::new(Some(9));
    /// let take = |v: &TVar<Option<u32>>| {
    ///     let v = v.clone();
    ///     move |tx: &mut shrink_stm::Tx<'_>| match tx.read(&v)? {
    ///         Some(x) => {
    ///             tx.write(&v, None)?;
    ///             Ok(x)
    ///         }
    ///         None => tx.retry(),
    ///     }
    /// };
    /// let got = rt.run(|tx| tx.or_else(take(&primary), take(&fallback)));
    /// assert_eq!(got, 9);
    /// ```
    pub fn or_else<T>(
        &mut self,
        first: impl FnOnce(&mut Tx<'rt>) -> TxResult<T>,
        second: impl FnOnce(&mut Tx<'rt>) -> TxResult<T>,
    ) -> TxResult<T> {
        self.checkpoints.push(Checkpoint {
            write_log_len: self.write_log.len(),
            write_vars_len: self.write_vars.len(),
            owned_len: self.owned_order.len(),
            overwrites: Vec::new(),
        });
        match first(self) {
            Err(abort) if abort.reason() == AbortReason::Retry => {
                let cp = self.checkpoints.pop().expect("checkpoint pushed above");
                self.rollback_to(cp);
                second(self)
            }
            other => {
                let cp = self.checkpoints.pop().expect("checkpoint pushed above");
                self.merge_checkpoint(cp);
                other
            }
        }
    }

    /// Restores the attempt to `cp`: truncate the write log, restore
    /// overwritten pre-branch entries, release branch-acquired stripes.
    /// Reads are kept (see [`Checkpoint`]).
    fn rollback_to(&mut self, cp: Checkpoint) {
        debug_assert_eq!(self.write_log.len(), self.write_vars.len());
        for var in self.write_vars.drain(cp.write_vars_len..) {
            self.write_index.remove(&var);
        }
        self.write_log.truncate(cp.write_log_len);
        for (i, saved) in cp.overwrites {
            self.write_log[i] = saved;
        }
        // Stripes first locked inside the branch guard only branch-local
        // first-writes (a pre-branch write would have acquired its stripe
        // at that earlier write), so they are safe to hand back.
        for idx in self.owned_order.drain(cp.owned_len..) {
            self.rt.orecs.at(idx).unlock_abort(self.me);
            self.owned_orecs.remove(&idx);
        }
    }

    /// Folds a completed checkpoint's undo records into the enclosing one:
    /// an entry the inner branch overwrote may predate the *outer*
    /// checkpoint too, and the outer rollback must restore the oldest
    /// saved value (the entry was untouched between the two pushes, so the
    /// inner record is exact for both).
    fn merge_checkpoint(&mut self, cp: Checkpoint) {
        if let Some(outer) = self.checkpoints.last_mut() {
            for (i, saved) in cp.overwrites {
                if i < outer.write_log_len && !outer.overwrites.iter().any(|(j, _)| *j == i) {
                    outer.overwrites.push((i, saved));
                }
            }
        }
    }

    fn sched_ctx(&self) -> SchedCtx<'_> {
        SchedCtx {
            thread: self.me,
            visible: &self.rt.orecs,
            epochs: &self.rt.registry,
            kind: TxnKind::ReadWrite,
        }
    }

    /// Builds a conflict abort against `owner`, stamping the owner's
    /// attempt epoch **only if the conflict is still live** (the owner
    /// still holds stripe `idx` after the sample). A live sample identifies
    /// the conflicting attempt exactly — the epoch only advances when that
    /// attempt ends — so a scheduler waiting on it serializes behind the
    /// right transaction. If the owner already released the stripe, its
    /// conflicting attempt is over and there is nothing to wait for: no
    /// epoch is attached and schedule-after policies skip the wait.
    fn conflict(&self, reason: AbortReason, var: VarId, idx: usize, owner: ThreadId) -> Abort {
        let abort = Abort::on_conflict(reason, var, owner);
        let Some(enemy) = self.rt.registry.get(owner) else {
            return abort;
        };
        let epoch = enemy.attempt_epoch();
        let snap = self.rt.orecs.at(idx).snapshot();
        if snap.locked_by_other(self.me) && snap.owner() == owner {
            abort.with_enemy_epoch(epoch)
        } else {
            abort
        }
    }

    /// One bounded-wait pause against a stripe held by `owner`. Under
    /// [`WaitPolicy::Parked`], the pause units that would blind-nap park on
    /// the owner's attempt epoch instead (same nap-length deadline): the
    /// owner finishing is exactly the event that frees the stripe, so the
    /// waiter wakes the moment progress is possible instead of oversleeping.
    fn contended_pause(&self, iteration: u32, owner: ThreadId) {
        let policy = self.rt.config.wait_policy;
        if policy == WaitPolicy::Parked && parked_nap_due(iteration) {
            if let Some(enemy) = self.rt.registry.get(owner) {
                if let Some(observed) = enemy.attempt_epoch_if_live() {
                    let _ = enemy.wait_attempt_change(observed, Instant::now() + PARK_NAP);
                    return;
                }
            }
        }
        pause(policy, iteration);
    }

    #[inline]
    fn check_kill(&self) -> TxResult<()> {
        if self.ctx.kill_pending() {
            let _ = self.ctx.take_kill_request();
            Err(Abort::new(AbortReason::Killed))
        } else {
            Ok(())
        }
    }

    /// Binds `tvar` to this runtime on first transactional use, or rejects
    /// the access when it is already bound to a different runtime (orec
    /// striping and retry waitlists are per-runtime; see
    /// [`TmError::ForeignTVar`](crate::error::TmError)).
    #[inline]
    fn check_owner<T>(&mut self, inner: &TVarInner<T>) -> TxResult<()> {
        match inner.bind_owner(self.rt.id) {
            Ok(()) => Ok(()),
            Err(owner) => {
                self.foreign = Some(ForeignAccess {
                    var: inner.id,
                    owner,
                });
                Err(Abort::new(AbortReason::ForeignTVar))
            }
        }
    }

    /// The rejected cross-runtime access, when the last abort was
    /// [`AbortReason::ForeignTVar`].
    pub(crate) fn foreign_access(&self) -> Option<ForeignAccess> {
        self.foreign
    }

    /// Transactionally reads `tvar`.
    ///
    /// # Errors
    ///
    /// Aborts (for the retry loop to handle) on validation failure, lock
    /// wait timeout, or a contention-manager kill.
    pub fn read<T: TxValue>(&mut self, tvar: &TVar<T>) -> TxResult<T> {
        self.check_kill()?;
        self.check_owner(&tvar.inner)?;
        self.ctx.bump_accesses();
        let var = tvar.inner.id;

        // Read-own-write.
        if let Some(&i) = self.write_index.get(&var) {
            let w = self.write_log[i]
                .as_any()
                .downcast_ref::<TypedWrite<T>>()
                .expect("write log entry type mismatch");
            self.read_vars.push(var);
            self.rt.scheduler.on_read(&self.sched_ctx(), var);
            return Ok(w.value.clone());
        }

        let idx = self.rt.orecs.index_of(var);
        let mut spins: u32 = 0;
        loop {
            self.check_kill()?;
            let orec = self.rt.orecs.at(idx);
            let s1 = orec.snapshot();

            if s1.locked_by(self.me) {
                // Stripe aliasing: I own the stripe through a write to some
                // other variable. Buffered writes install only at commit, so
                // the cell still holds the committed value, guarded by the
                // preserved pre-lock version.
                let value = tvar.inner.cell.load();
                if s1.version() > self.start_ts {
                    self.extend()?;
                }
                self.record_read(idx, s1.version(), var);
                return Ok(value);
            }

            if s1.locked_by_other(self.me) {
                match self.rt.config.backend {
                    BackendKind::Swiss => {
                        if s1.committing() {
                            // Owner is installing values; wait briefly.
                            if spins >= self.rt.config.read_spin_budget {
                                return Err(self.conflict(
                                    AbortReason::LockTimeout,
                                    var,
                                    idx,
                                    s1.owner(),
                                ));
                            }
                            self.contended_pause(spins, s1.owner());
                            spins += 1;
                            continue;
                        }
                        // Owner still executing: its writes are buffered, so
                        // the committed value is still in the cell.
                        let value = tvar.inner.cell.load();
                        let s2 = orec.snapshot();
                        if s2 != s1 {
                            spins += 1;
                            continue;
                        }
                        if s1.version() > self.start_ts {
                            self.extend()?;
                        }
                        self.record_read(idx, s1.version(), var);
                        return Ok(value);
                    }
                    BackendKind::Tiny => {
                        // Encounter-time locking: busy-wait for the writer.
                        if spins >= self.rt.config.lock_spin_budget {
                            return Err(self.conflict(
                                AbortReason::LockTimeout,
                                var,
                                idx,
                                s1.owner(),
                            ));
                        }
                        self.contended_pause(spins, s1.owner());
                        spins += 1;
                        continue;
                    }
                }
            }

            // Unlocked: load, then confirm the orec did not move under us.
            let value = tvar.inner.cell.load();
            let s2 = orec.snapshot();
            if s2 != s1 {
                spins += 1;
                continue;
            }
            if s1.version() > self.start_ts {
                self.extend()?;
            }
            self.record_read(idx, s1.version(), var);
            return Ok(value);
        }
    }

    #[inline]
    fn record_read(&mut self, orec: usize, version: u64, var: VarId) {
        self.read_log.push(ReadEntry { orec, version });
        self.read_vars.push(var);
        self.rt.scheduler.on_read(&self.sched_ctx(), var);
    }

    /// Transactionally writes `value` into `tvar`.
    ///
    /// The write lock is acquired immediately (visible writes); the value is
    /// buffered and installed at commit.
    ///
    /// # Errors
    ///
    /// Aborts on write/write conflict resolution against this transaction,
    /// lock wait timeout, or a contention-manager kill.
    pub fn write<T: TxValue>(&mut self, tvar: &TVar<T>, value: T) -> TxResult<()> {
        self.check_kill()?;
        self.check_owner(&tvar.inner)?;
        self.ctx.bump_accesses();
        let var = tvar.inner.id;

        if let Some(&i) = self.write_index.get(&var) {
            // Inside an or_else branch, overwriting an entry that predates
            // the branch must be undoable: save the pre-branch value once.
            if let Some(cp) = self.checkpoints.last_mut() {
                if i < cp.write_log_len && !cp.overwrites.iter().any(|(j, _)| *j == i) {
                    let saved = self.write_log[i].snapshot_entry();
                    cp.overwrites.push((i, saved));
                }
            }
            let w = self.write_log[i]
                .as_any_mut()
                .downcast_mut::<TypedWrite<T>>()
                .expect("write log entry type mismatch");
            w.value = value;
            return Ok(());
        }

        let idx = self.rt.orecs.index_of(var);
        if !self.owned_orecs.contains(&idx) {
            self.acquire_stripe(idx, var)?;
        }
        self.write_log.push(Box::new(TypedWrite {
            target: Arc::clone(&tvar.inner),
            value,
        }));
        self.write_index.insert(var, self.write_log.len() - 1);
        self.write_vars.push(var);
        self.rt.scheduler.on_write(&self.sched_ctx(), var);
        Ok(())
    }

    /// Reads, applies `f`, and writes back — the common read-modify-write.
    ///
    /// # Errors
    ///
    /// Propagates aborts from the underlying read and write.
    pub fn modify<T: TxValue>(&mut self, tvar: &TVar<T>, f: impl FnOnce(T) -> T) -> TxResult<()> {
        let current = self.read(tvar)?;
        self.write(tvar, f(current))
    }

    fn acquire_stripe(&mut self, idx: usize, var: VarId) -> TxResult<()> {
        if crate::failpoint!(FaultSite::OrecAcquire) {
            return Err(Abort::new(AbortReason::FaultInjected));
        }
        let mut spins: u32 = 0;
        let mut polite_attempts: u32 = 0;
        let mut requested_kill = false;
        let cm = self.rt.config.effective_cm();
        loop {
            self.check_kill()?;
            let orec = self.rt.orecs.at(idx);
            let s1 = orec.snapshot();

            if s1.locked_by_other(self.me) {
                let owner = s1.owner();
                let lose = |tx: &Self| tx.conflict(AbortReason::WriteConflict, var, idx, owner);
                match cm {
                    CmPolicy::BackendDefault => unreachable!("resolved by effective_cm"),
                    CmPolicy::Suicide => {
                        // Bounded busy-wait, then abort self.
                        if spins >= self.rt.config.lock_spin_budget {
                            return Err(lose(self));
                        }
                        self.contended_pause(spins, owner);
                        spins += 1;
                        continue;
                    }
                    CmPolicy::Polite => {
                        // Exponentially growing patience, then abort self.
                        if polite_attempts >= self.rt.config.polite_retries {
                            return Err(lose(self));
                        }
                        let patience = 16u32 << polite_attempts.min(10);
                        for i in 0..patience {
                            self.contended_pause(i, owner);
                        }
                        polite_attempts += 1;
                        continue;
                    }
                    CmPolicy::TwoPhase | CmPolicy::Karma => {
                        let my_work = self.ctx.accesses();
                        if cm == CmPolicy::TwoPhase && my_work <= self.rt.config.cm_timid_threshold
                        {
                            // Timid phase: young transactions lose quietly.
                            return Err(lose(self));
                        }
                        let victim = self.rt.registry.get(owner);
                        match victim {
                            Some(v) if v.accesses() < my_work => {
                                // Priority phase: I did more work; kill the
                                // owner and wait (bounded) for it to release.
                                if !requested_kill {
                                    v.request_kill();
                                    requested_kill = true;
                                }
                                if spins >= self.rt.config.kill_wait_budget {
                                    return Err(lose(self));
                                }
                                self.contended_pause(spins, owner);
                                spins += 1;
                                continue;
                            }
                            _ => {
                                // Owner has priority (or vanished): I lose.
                                return Err(lose(self));
                            }
                        }
                    }
                }
            }

            if s1.locked() {
                // Owned by me but not in owned_orecs — impossible by
                // construction; treat as a racing snapshot and retry.
                spins += 1;
                continue;
            }

            if s1.version() > self.start_ts {
                self.extend()?;
            }
            if orec.try_lock(s1, self.me) {
                self.ctx
                    .orec_acquires
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                self.owned_orecs.insert(idx);
                self.owned_order.push(idx);
                return Ok(());
            }
            spins += 1;
        }
    }

    /// Revalidates the read log and, on success, moves the snapshot forward
    /// to the current clock (TinySTM-style timestamp extension).
    fn extend(&mut self) -> TxResult<()> {
        let candidate = self.rt.clock.now();
        if self.read_log_valid() {
            self.start_ts = candidate;
            Ok(())
        } else {
            Err(Abort::new(AbortReason::ReadValidation))
        }
    }

    fn entry_valid(&self, entry: &ReadEntry, snap: OrecSnapshot) -> bool {
        if snap.locked_by(self.me) {
            snap.version() == entry.version
        } else if snap.locked_by_other(self.me) {
            // Swiss resolves read/write conflicts lazily: a lock whose owner
            // has not committed (version unchanged, not installing) does not
            // invalidate the read. Tiny is conservative.
            self.rt.config.backend == BackendKind::Swiss
                && !snap.committing()
                && snap.version() == entry.version
        } else {
            snap.version() == entry.version
        }
    }

    fn read_log_valid(&self) -> bool {
        self.read_log
            .iter()
            .all(|e| self.entry_valid(e, self.rt.orecs.at(e.orec).snapshot()))
    }

    /// Attempts to commit. On success the buffered writes are installed and
    /// all locks released; on failure the caller must invoke
    /// [`rollback`](Tx::rollback).
    pub(crate) fn try_commit(&mut self) -> Result<(), Abort> {
        self.check_kill()?;
        if self.write_log.is_empty() {
            // Read-only: the incremental validation performed at each read
            // already guarantees a consistent snapshot.
            self.finished = true;
            return Ok(());
        }
        for &idx in &self.owned_order {
            self.rt.orecs.at(idx).begin_commit(self.me);
        }
        let commit_ts = self.rt.clock.tick();
        if commit_ts > self.start_ts + 1 && !self.read_log_valid() {
            return Err(Abort::new(AbortReason::CommitValidation));
        }
        // Mid-commit hazard window: commit locks are held and validation
        // passed, but nothing is published yet — a panic or spurious abort
        // here rolls back cleanly (`unlock_abort` restores the pre-lock
        // versions). The install loop below is deliberately *not* a
        // failpoint: interrupting it would publish a torn write set.
        if crate::failpoint!(FaultSite::CommitInstall) {
            return Err(Abort::new(AbortReason::FaultInjected));
        }
        for w in &self.write_log {
            w.install();
        }
        for &idx in &self.owned_order {
            self.rt.orecs.at(idx).unlock_commit(self.me, commit_ts);
        }
        // The commit is durable once the version stamps above are released;
        // mark finished *before* waking waiters so a panic injected inside
        // the notify path cannot make the drop-rollback revert freshly
        // committed stripes.
        self.finished = true;
        // Wake transactions parked in `Tx::retry` on any stripe this commit
        // wrote — after the version stamps above, so a woken waiter always
        // observes the stripe moved (DESIGN.md §9).
        self.rt.retry_waits.notify_commit(&self.owned_order);
        Ok(())
    }

    /// Releases every held lock after a failed attempt.
    pub(crate) fn rollback(&mut self) {
        if self.finished {
            return;
        }
        // Delay-only site (this path runs during unwinds): widens the
        // window in which other threads observe the stripes still locked.
        let _ = crate::failpoint!(FaultSite::OrecRelease);
        for &idx in &self.owned_order {
            self.rt.orecs.at(idx).unlock_abort(self.me);
        }
        let _ = self.ctx.take_kill_request();
        self.finished = true;
    }

    /// Extracts the access logs for the scheduler hooks.
    pub(crate) fn take_logs(&mut self) -> (Vec<VarId>, Vec<VarId>) {
        (
            std::mem::take(&mut self.read_vars),
            std::mem::take(&mut self.write_vars),
        )
    }

    /// The `(stripe, observed version)` pairs a retrying attempt must park
    /// on: its validated read log, deduplicated by stripe. Taken after
    /// [`rollback`](Tx::rollback) — released stripes carry their pre-lock
    /// versions again, so the observed versions below are live.
    pub(crate) fn retry_wait_plan(&self) -> Vec<(usize, u64)> {
        let mut plan: Vec<(usize, u64)> =
            self.read_log.iter().map(|e| (e.orec, e.version)).collect();
        plan.sort_unstable();
        // A consistent read log holds one version per stripe (a version
        // moving mid-attempt forces extend-or-abort), so stripe dedup is
        // lossless.
        plan.dedup_by_key(|&mut (orec, _)| orec);
        plan
    }
}

impl Drop for Tx<'_> {
    fn drop(&mut self) {
        // Panic safety: a body that unwinds must not leave stripes locked.
        self.rollback();
    }
}

impl fmt::Debug for Tx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tx")
            .field("thread", &self.me)
            .field("start_ts", &self.start_ts)
            .field("reads", &self.read_vars.len())
            .field("writes", &self.write_vars.len())
            .finish()
    }
}

/// The read capability shared by [`Tx`] and [`ReadTx`].
///
/// Code that only *reads* transactional state can be written once against
/// this trait and run both inside a full read-write transaction
/// ([`TmRuntime::run`](crate::TmRuntime::run)) and inside the lock-free
/// read-only mode ([`TmRuntime::read_only`](crate::TmRuntime::read_only)).
/// The workload crates use it to route their lookup/traversal operations
/// through either path.
///
/// The trait has a generic method, so it is not object-safe; take it as a
/// generic parameter (`fn lookup(tx: &mut impl TxRead, ...)`). A
/// `&mut Tx<'_>` reborrows into such a parameter unchanged, so existing
/// call sites keep compiling.
///
/// # Examples
///
/// ```
/// use shrink_stm::{TmRuntime, TVar, TxRead, TxResult};
///
/// fn sum(tx: &mut impl TxRead, vars: &[TVar<u64>]) -> TxResult<u64> {
///     let mut total = 0;
///     for v in vars {
///         total += tx.read(v)?;
///     }
///     Ok(total)
/// }
///
/// let rt = TmRuntime::new();
/// let vars: Vec<TVar<u64>> = (1..=3).map(TVar::new).collect();
/// assert_eq!(rt.run(|tx| sum(tx, &vars)), 6); // read-write path
/// assert_eq!(rt.read_only(|tx| sum(tx, &vars)), 6); // lock-free path
/// ```
pub trait TxRead {
    /// Transactionally reads `tvar`.
    ///
    /// # Errors
    ///
    /// Aborts (for the owning retry loop to handle) when the read cannot be
    /// added to a consistent snapshot.
    fn read<T: TxValue>(&mut self, tvar: &TVar<T>) -> TxResult<T>;

    /// What this transaction declared itself to be.
    fn kind(&self) -> TxnKind;

    /// The id of the thread running this transaction.
    fn thread(&self) -> ThreadId;

    /// The snapshot timestamp the attempt currently validates against.
    fn start_timestamp(&self) -> u64;

    /// Requests an abort-and-restart of this attempt.
    ///
    /// # Errors
    ///
    /// Always returns `Err` with [`AbortReason::UserRestart`].
    fn restart<T>(&self) -> TxResult<T> {
        Err(Abort::new(AbortReason::UserRestart))
    }
}

impl TxRead for Tx<'_> {
    fn read<T: TxValue>(&mut self, tvar: &TVar<T>) -> TxResult<T> {
        Tx::read(self, tvar)
    }

    fn kind(&self) -> TxnKind {
        TxnKind::ReadWrite
    }

    fn thread(&self) -> ThreadId {
        Tx::thread(self)
    }

    fn start_timestamp(&self) -> u64 {
        Tx::start_timestamp(self)
    }
}

/// A lock-free read-only transaction attempt, handed to the body closure by
/// [`TmRuntime::read_only`](crate::TmRuntime::read_only).
///
/// The protocol is the read half of TL2, with everything writer-facing
/// removed:
///
/// * the global clock is sampled **once** at begin (`start_ts`);
/// * every read snapshots the guarding orec, loads the value through the
///   lock-free [`ValueCell::load`](crate::cell::ValueCell) path, and
///   re-snapshots to confirm the stripe did not move;
/// * a version newer than `start_ts` triggers a timestamp extension
///   (revalidate the whole read log against the current clock); a
///   successful extension **re-reads the stripe** under the advanced
///   timestamp (the pre-extension value may predate a commit the
///   extension slid past); a failed extension restarts the body with a
///   fresh snapshot.
///
/// What a `ReadTx` **never** does: acquire an orec (no write lock, no CAS
/// on shared state), take a commit ticket (`GlobalClock::tick`), register
/// on a retry waitlist, or request a kill. Writers cannot observe it, so it
/// can never abort one — and no writer can *force* it to block; invalidated
/// snapshots restart quietly inside `read_only`, invisible to the
/// schedulers. The mode is **lock-free, not wait-free**: every retry path
/// inside a single read is bounded by `read_spin_budget`, but each restart
/// is caused by a writer *committing*, so the system makes progress while
/// an individual reader can in principle starve under a saturating writer
/// stream (bound it with
/// [`read_only_budgeted`](crate::TmRuntime::read_only_budgeted)).
///
/// Unlike the read-write path, reads go *through* non-committing write
/// locks on **both** backends (not just Swiss): buffered writes install
/// only during the `committing` window, so a locked-but-not-committing
/// stripe still guards the committed value under its pre-lock version. The
/// only state a reader must wait out is `committing` itself, and that wait
/// — like the snapshot-moved and extension retry paths — is bounded by
/// `read_spin_budget` before the reader restarts.
pub struct ReadTx<'rt> {
    rt: &'rt RuntimeInner,
    me: ThreadId,
    start_ts: u64,
    read_log: Vec<ReadEntry>,
    /// Reads performed by this attempt (flushed to `ThreadCtx::ro_reads`).
    reads: u64,
    /// Timestamp extensions performed by this attempt (flushed to
    /// `ThreadCtx::ro_revalidations`; restarts are counted by the driver).
    revalidations: u64,
    /// Set when the body touched a `TVar` bound to another runtime.
    foreign: Option<ForeignAccess>,
}

impl<'rt> ReadTx<'rt> {
    pub(crate) fn begin(rt: &'rt RuntimeInner, me: ThreadId) -> Self {
        ReadTx {
            rt,
            me,
            start_ts: rt.clock.now(),
            read_log: Vec::new(),
            reads: 0,
            revalidations: 0,
            foreign: None,
        }
    }

    /// The rejected cross-runtime access, when the last abort was
    /// [`AbortReason::ForeignTVar`].
    pub(crate) fn foreign_access(&self) -> Option<ForeignAccess> {
        self.foreign
    }

    /// The id of the thread running this transaction.
    pub fn thread(&self) -> ThreadId {
        self.me
    }

    /// The snapshot timestamp the attempt currently validates against.
    pub fn start_timestamp(&self) -> u64 {
        self.start_ts
    }

    /// Number of reads performed by this attempt.
    pub fn read_count(&self) -> usize {
        self.read_log.len()
    }

    /// Requests a restart of this attempt with a fresh snapshot.
    ///
    /// # Errors
    ///
    /// Always returns `Err` with [`AbortReason::UserRestart`].
    pub fn restart<T>(&self) -> TxResult<T> {
        Err(Abort::new(AbortReason::UserRestart))
    }

    /// Reads `tvar` as part of the lock-free snapshot.
    ///
    /// # Errors
    ///
    /// Aborts with [`AbortReason::ReadValidation`] when the value cannot be
    /// added to a consistent snapshot (a concurrent writer moved part of
    /// the read set, or a committing installer outlasted the spin budget).
    /// [`TmRuntime::read_only`](crate::TmRuntime::read_only) catches this
    /// and restarts the body; it never surfaces to user code.
    pub fn read<T: TxValue>(&mut self, tvar: &TVar<T>) -> TxResult<T> {
        // A foreign read would validate against the wrong runtime's orec
        // table — a torn multi-variable snapshot, not just a lost wakeup —
        // so the owner stamp is enforced on this path too.
        if let Err(owner) = tvar.inner.bind_owner(self.rt.id) {
            self.foreign = Some(ForeignAccess {
                var: tvar.inner.id,
                owner,
            });
            return Err(Abort::new(AbortReason::ForeignTVar));
        }
        self.reads += 1;
        let idx = self.rt.orecs.index_of(tvar.inner.id);
        let mut spins: u32 = 0;
        loop {
            let orec = self.rt.orecs.at(idx);
            let s1 = orec.snapshot();
            if s1.committing() {
                // The owner is installing values right now — the only
                // window where the cell may hold uncommitted data. Grant it
                // a bounded wait, then restart rather than lock or kill.
                if spins >= self.rt.config.read_spin_budget {
                    return Err(Abort::new(AbortReason::ReadValidation));
                }
                pause(self.rt.config.wait_policy, spins);
                spins += 1;
                continue;
            }
            // Unlocked, or locked but not yet committing: the committed
            // value is still in the cell, guarded by the pre-lock version.
            let value = tvar.inner.cell.load();
            let s2 = orec.snapshot();
            if s2 != s1 {
                if spins >= self.rt.config.read_spin_budget {
                    return Err(Abort::new(AbortReason::ReadValidation));
                }
                spins += 1;
                continue;
            }
            if s1.version() > self.start_ts {
                self.extend()?;
                // The extension proved the read log consistent at the new
                // timestamp, but `value`/`s1` were sampled *before* extend
                // read the clock — a writer may have committed to this very
                // stripe in between, which the extension cannot see (the
                // entry is not in the read log yet). Re-snapshot and
                // re-load under the advanced timestamp (TinySTM's
                // goto-restart) instead of admitting a possibly stale pair.
                if spins >= self.rt.config.read_spin_budget {
                    return Err(Abort::new(AbortReason::ReadValidation));
                }
                spins += 1;
                continue;
            }
            self.read_log.push(ReadEntry {
                orec: idx,
                version: s1.version(),
            });
            return Ok(value);
        }
    }

    /// Revalidates the read log and, on success, moves the snapshot forward
    /// to the current clock — the same timestamp extension as the
    /// read-write path, minus any own-lock cases (a `ReadTx` holds none).
    fn extend(&mut self) -> TxResult<()> {
        self.revalidations += 1;
        let candidate = self.rt.clock.now();
        let valid = self.read_log.iter().all(|e| {
            let snap = self.rt.orecs.at(e.orec).snapshot();
            !snap.committing() && snap.version() == e.version
        });
        if valid {
            self.start_ts = candidate;
            Ok(())
        } else {
            Err(Abort::new(AbortReason::ReadValidation))
        }
    }

    /// The per-attempt counters, for the driver to flush into `ThreadCtx`.
    pub(crate) fn counters(&self) -> (u64, u64) {
        (self.reads, self.revalidations)
    }
}

impl TxRead for ReadTx<'_> {
    fn read<T: TxValue>(&mut self, tvar: &TVar<T>) -> TxResult<T> {
        ReadTx::read(self, tvar)
    }

    fn kind(&self) -> TxnKind {
        TxnKind::ReadOnly
    }

    fn thread(&self) -> ThreadId {
        ReadTx::thread(self)
    }

    fn start_timestamp(&self) -> u64 {
        ReadTx::start_timestamp(self)
    }
}

impl fmt::Debug for ReadTx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ReadTx")
            .field("thread", &self.me)
            .field("start_ts", &self.start_ts)
            .field("reads", &self.read_log.len())
            .finish()
    }
}
