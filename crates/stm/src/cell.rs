//! Lock-free value storage for transactional variables.
//!
//! Each [`TVar`](crate::TVar) keeps its current value in a [`ValueCell`],
//! which picks one of two lock-free representations at construction time
//! (the choice is a compile-time constant per `T`, so the dispatch branch
//! predicts perfectly):
//!
//! * **Inline seqlock** — for types with no drop glue that fit in a small
//!   word buffer (`size <= 32`, `align <= 8`): the value's bytes live
//!   directly in the cell as atomic words guarded by a sequence counter.
//!   A snapshot read is a handful of atomic loads with no heap
//!   indirection, no epoch pin, and no allocation on store. This covers
//!   the counters, prices and keys the paper's word-based STM workloads
//!   are made of.
//! * **Epoch-reclaimed box** — for everything else: an atomic pointer to a
//!   heap value. Readers pin an epoch, load the pointer and clone the
//!   value out; writers swap in a freshly allocated value at commit and
//!   defer destruction of the old one until all pinned readers have moved
//!   on (see `vendor/crossbeam` and DESIGN.md §7).
//!
//! Neither path acquires a mutex or rwlock. Combined with the orec
//! validate-read-validate protocol this gives torn-read-free, safe
//! snapshots without a per-variable lock.
//!
//! This load path is what makes the lock-free read-only mode
//! ([`TmRuntime::read_only`](crate::TmRuntime::read_only)) possible: a
//! `ReadTx` read is exactly `orec snapshot → ValueCell::load → orec
//! re-snapshot`, with no shared-state write anywhere on the path.

use std::fmt;
use std::marker::PhantomData;
use std::mem::{self, ManuallyDrop};
use std::ptr;
use std::sync::atomic::{fence, AtomicU64, Ordering};

use crossbeam::epoch::{self, Atomic, Owned};

/// Inline storage budget: up to this many 8-byte words.
const INLINE_WORDS: usize = 4;

/// Whether `T` takes the inline seqlock representation.
///
/// Requirements: no drop glue (a seqlock read materializes a bitwise
/// temporary that is never dropped), fits the word buffer, and alignment
/// no stricter than the `u64` words backing it.
const fn use_inline<T>() -> bool {
    !mem::needs_drop::<T>()
        && mem::size_of::<T>() <= INLINE_WORDS * mem::size_of::<u64>()
        && mem::align_of::<T>() <= mem::align_of::<u64>()
}

/// A single versioned storage slot.
///
/// The cell itself knows nothing about versions — ordering and visibility
/// of *which* value a transaction may use come from the ownership record
/// that guards the variable.
pub(crate) struct ValueCell<T> {
    repr: Repr<T>,
}

enum Repr<T> {
    Inline(InlineCell<T>),
    Boxed(Atomic<T>),
}

impl<T: Clone + Send + Sync + 'static> ValueCell<T> {
    /// Creates a cell holding `value`.
    pub(crate) fn new(value: T) -> Self {
        let repr = if use_inline::<T>() {
            Repr::Inline(InlineCell::new(value))
        } else {
            Repr::Boxed(Atomic::new(value))
        };
        ValueCell { repr }
    }

    /// True when this cell uses the inline seqlock fast path (diagnostic,
    /// used by tests and benches to assert representation selection).
    pub(crate) fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline(_))
    }

    /// Clones the current value out.
    #[inline]
    pub(crate) fn load(&self) -> T {
        match &self.repr {
            Repr::Inline(cell) => cell.load(),
            Repr::Boxed(ptr) => {
                let guard = epoch::pin();
                let shared = ptr.load(Ordering::Acquire, &guard);
                // SAFETY: the pointer is never null after construction and
                // the pinned epoch keeps the pointee alive for the clone.
                unsafe { shared.deref().clone() }
            }
        }
    }

    /// Publishes `value`. On the boxed path, destruction of the previous
    /// value is deferred until all current readers unpin.
    #[inline]
    pub(crate) fn store(&self, value: T) {
        match &self.repr {
            Repr::Inline(cell) => cell.store(value),
            Repr::Boxed(ptr) => {
                let guard = epoch::pin();
                let old = ptr.swap(Owned::new(value), Ordering::AcqRel, &guard);
                // SAFETY: `old` was the uniquely installed previous value;
                // no new reader can acquire it after the swap, and already
                // pinned readers are covered by the two-epoch grace period.
                unsafe {
                    guard.defer_destroy(old);
                }
            }
        }
    }
}

impl<T> fmt::Debug for ValueCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.repr {
            Repr::Inline(_) => f.write_str("ValueCell(inline)"),
            Repr::Boxed(_) => f.write_str("ValueCell(boxed)"),
        }
    }
}

/// Seqlock over an inline word buffer.
///
/// `seq` is even when the words are stable and odd while a writer is
/// copying new bytes in; writers claim the odd state with a CAS (so
/// concurrent non-transactional stores stay safe even though the commit
/// protocol already serializes transactional installs per variable), and
/// readers retry until they observe the same even count on both sides of
/// the word copy.
struct InlineCell<T> {
    seq: AtomicU64,
    words: [AtomicU64; INLINE_WORDS],
    _marker: PhantomData<T>,
}

impl<T: Clone> InlineCell<T> {
    fn new(value: T) -> Self {
        let cell = InlineCell {
            seq: AtomicU64::new(0),
            words: [const { AtomicU64::new(0) }; INLINE_WORDS],
            _marker: PhantomData,
        };
        cell.store(value);
        cell
    }

    #[inline]
    fn load(&self) -> T {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let mut buf = [0u64; INLINE_WORDS];
            for (slot, word) in buf.iter_mut().zip(&self.words) {
                *slot = word.load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if self.seq.load(Ordering::Relaxed) == s1 {
                // SAFETY: the sequence count was even and unchanged across
                // the word copy, so `buf` holds the exact bytes of a value
                // that was fully written by `store` — a valid `T`.
                return unsafe { assemble(&buf) };
            }
        }
    }

    #[inline]
    fn store(&self, value: T) {
        debug_assert!(use_inline::<T>());
        let mut buf = [0u64; INLINE_WORDS];
        // Freeze the value's bytes into the zero-initialized buffer. (Like
        // crossbeam's `AtomicCell`, this byte copy may include internal
        // padding; every tier-1 target handles that as a plain memcpy.)
        // SAFETY: `use_inline` guarantees the value fits the buffer.
        unsafe {
            ptr::copy_nonoverlapping(
                ptr::from_ref(&value).cast::<u8>(),
                buf.as_mut_ptr().cast::<u8>(),
                mem::size_of::<T>(),
            );
        }
        // The cell now owns the bytes; `T` has no drop glue, so forgetting
        // the source is a plain ownership transfer.
        mem::forget(value);

        // Claim the writer side: even -> odd.
        let mut s = self.seq.load(Ordering::Relaxed);
        loop {
            if s & 1 == 1 {
                std::hint::spin_loop();
                s = self.seq.load(Ordering::Relaxed);
                continue;
            }
            match self
                .seq
                .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(cur) => s = cur,
            }
        }
        for (word, val) in self.words.iter().zip(buf) {
            word.store(val, Ordering::Relaxed);
        }
        // Publish: odd -> next even. Release orders the word stores before
        // the counter store that readers acquire.
        self.seq.store(s + 2, Ordering::Release);
    }
}

/// Materializes a `T` from validated seqlock bytes, preserving `Clone`
/// semantics: the bitwise temporary is cloned, then forgotten (legal
/// because the inline representation is only chosen for dropless types).
///
/// # Safety
///
/// `buf` must hold the bytes of a valid, fully written `T` (guaranteed by
/// the seqlock validation in `InlineCell::load`), and `T` must satisfy
/// [`use_inline`].
#[inline]
unsafe fn assemble<T: Clone>(buf: &[u64; INLINE_WORDS]) -> T {
    // SAFETY: size checked by `use_inline`; the bytes are a valid `T` per
    // the caller's contract. `ManuallyDrop` suppresses drop of the bitwise
    // temporary (which has no drop glue anyway).
    let tmp = unsafe { mem::transmute_copy::<[u64; INLINE_WORDS], ManuallyDrop<T>>(buf) };
    (*tmp).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
    use std::sync::Arc;

    #[test]
    fn load_returns_stored_value() {
        let c = ValueCell::new(41);
        assert_eq!(c.load(), 41);
        c.store(42);
        assert_eq!(c.load(), 42);
    }

    #[test]
    fn representation_selection() {
        // Dropless and small: inline.
        assert!(ValueCell::new(0u8).is_inline());
        assert!(ValueCell::new(0u64).is_inline());
        assert!(ValueCell::new((0u64, 0u64, 0u64, 0u64)).is_inline());
        assert!(ValueCell::new([0u8; 32]).is_inline());
        // Zero-sized types are (degenerately) inline.
        assert!(ValueCell::new(()).is_inline());
        // Too big: boxed.
        assert!(!ValueCell::new([0u64; 5]).is_inline());
        // Drop glue: boxed.
        assert!(!ValueCell::new(String::from("x")).is_inline());
        assert!(!ValueCell::new(vec![1u8]).is_inline());
        assert!(!ValueCell::new(Arc::new(1u8)).is_inline());
        // Over-aligned: boxed (the word buffer is only 8-byte aligned).
        #[derive(Clone)]
        #[repr(align(16))]
        struct Overaligned(#[allow(dead_code)] u64);
        assert!(!ValueCell::new(Overaligned(1)).is_inline());
    }

    #[test]
    fn zero_sized_values_round_trip() {
        let c = ValueCell::new(());
        c.store(());
        #[allow(clippy::let_unit_value)]
        let v = c.load();
        let _: () = v;

        #[derive(Clone, PartialEq, Debug)]
        struct Marker;
        let m = ValueCell::new(Marker);
        assert_eq!(m.load(), Marker);
        m.store(Marker);
        assert_eq!(m.load(), Marker);
    }

    #[test]
    fn odd_sizes_round_trip() {
        // 1, 3, 4, 12 and 17-byte payloads exercise the zero-padded tail.
        let c1 = ValueCell::new(0xABu8);
        assert_eq!(c1.load(), 0xAB);
        let c3 = ValueCell::new([1u8, 2, 3]);
        assert_eq!(c3.load(), [1, 2, 3]);
        let c4 = ValueCell::new(0xDEAD_BEEFu32);
        assert_eq!(c4.load(), 0xDEAD_BEEF);
        let c12 = ValueCell::new((7u32, 8u64));
        assert_eq!(c12.load(), (7, 8));
        let c17 = ValueCell::new([9u8; 17]);
        assert_eq!(c17.load(), [9u8; 17]);
    }

    /// A boxed-path twin of a `u64`: drop glue forces `Repr::Boxed`, while
    /// the payload semantics stay identical to the inline path.
    #[derive(Clone, PartialEq, Debug)]
    struct BoxedU64(u64);
    impl Drop for BoxedU64 {
        fn drop(&mut self) {}
    }

    #[test]
    fn inline_and_boxed_paths_agree() {
        let inline = ValueCell::new(0u64);
        let boxed = ValueCell::new(BoxedU64(0));
        assert!(inline.is_inline());
        assert!(!boxed.is_inline());
        for i in 1..=100u64 {
            inline.store(i);
            boxed.store(BoxedU64(i));
            assert_eq!(inline.load(), boxed.load().0);
        }
    }

    #[test]
    fn inline_and_boxed_paths_agree_under_contention() {
        const ROUNDS: u64 = 2000;
        let inline = Arc::new(ValueCell::new(0u64));
        let boxed = Arc::new(ValueCell::new(BoxedU64(0)));
        let writer = {
            let inline = Arc::clone(&inline);
            let boxed = Arc::clone(&boxed);
            std::thread::spawn(move || {
                for i in 1..=ROUNDS {
                    inline.store(i);
                    boxed.store(BoxedU64(i));
                }
            })
        };
        let reader = {
            let inline = Arc::clone(&inline);
            let boxed = Arc::clone(&boxed);
            std::thread::spawn(move || {
                let (mut last_i, mut last_b) = (0, 0);
                for _ in 0..ROUNDS {
                    let i = inline.load();
                    let b = boxed.load().0;
                    assert!(i >= last_i, "inline path went backwards: {i} < {last_i}");
                    assert!(b >= last_b, "boxed path went backwards: {b} < {last_b}");
                    last_i = i;
                    last_b = b;
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(inline.load(), ROUNDS);
        assert_eq!(boxed.load(), BoxedU64(ROUNDS));
    }

    #[test]
    fn store_is_visible_to_other_threads() {
        let c = Arc::new(ValueCell::new(0u64));
        let writer = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for i in 1..=1000 {
                    c.store(i);
                }
            })
        };
        let reader = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                let mut last = 0;
                for _ in 0..1000 {
                    let v = c.load();
                    assert!(v >= last, "values must be monotone: {v} < {last}");
                    last = v;
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(c.load(), 1000);
    }

    #[test]
    fn wide_inline_values_are_never_torn() {
        // All four words must always agree; a torn seqlock read would mix
        // rounds.
        let c = Arc::new(ValueCell::new([0u64; 4]));
        assert!(c.is_inline());
        let writer = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for i in 1..=4000u64 {
                    c.store([i; 4]);
                }
            })
        };
        let reader = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for _ in 0..4000 {
                    let v = c.load();
                    assert!(
                        v.windows(2).all(|w| w[0] == w[1]),
                        "torn inline read: {v:?}"
                    );
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
    }

    #[test]
    fn dropping_cell_drops_value() {
        struct Tracked(Arc<AtomicUsize>);
        impl Clone for Tracked {
            fn clone(&self) -> Self {
                Tracked(Arc::clone(&self.0))
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, AtomicOrdering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let cell = ValueCell::new(Tracked(Arc::clone(&drops)));
            drop(cell);
        }
        assert!(drops.load(AtomicOrdering::SeqCst) >= 1);
    }

    #[test]
    fn heavy_store_load_does_not_leak_wildly() {
        // Smoke test: epoch reclamation keeps up with churn on the boxed
        // path (1 KiB payloads would OOM quickly if retirement leaked).
        let c = ValueCell::new(vec![0u8; 1024]);
        for i in 0..10_000 {
            c.store(vec![(i % 256) as u8; 1024]);
        }
        assert_eq!(c.load()[0], ((10_000 - 1) % 256) as u8);
    }

    #[test]
    fn clone_semantics_preserved_on_inline_path() {
        // A dropless type whose Clone is observable: the inline path must
        // call it (via `assemble`) rather than bit-copying past it.
        static CLONES: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct CountsClones(u64);
        impl Clone for CountsClones {
            fn clone(&self) -> Self {
                CLONES.fetch_add(1, AtomicOrdering::SeqCst);
                CountsClones(self.0)
            }
        }
        let c = ValueCell::new(CountsClones(9));
        assert!(c.is_inline());
        let before = CLONES.load(AtomicOrdering::SeqCst);
        let v = c.load();
        assert_eq!(v.0, 9);
        assert_eq!(CLONES.load(AtomicOrdering::SeqCst), before + 1);
    }
}
