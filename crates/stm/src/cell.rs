//! Epoch-managed value storage.
//!
//! Each [`TVar`](crate::TVar) keeps its current value behind an
//! epoch-reclaimed atomic pointer. Readers pin an epoch, load the pointer and
//! clone the value out; writers swap in a freshly allocated value at commit
//! and defer destruction of the old one. Combined with the orec
//! validate-read-validate protocol this gives torn-read-free, safe snapshots
//! without a per-variable lock.

use std::fmt;
use std::sync::atomic::Ordering;

use crossbeam::epoch::{self, Atomic, Owned, Shared};

/// A single versioned storage slot.
///
/// The cell itself knows nothing about versions — ordering and visibility of
/// *which* value a transaction may use come from the ownership record that
/// guards the variable.
pub(crate) struct ValueCell<T> {
    ptr: Atomic<T>,
}

impl<T: Clone + Send + Sync + 'static> ValueCell<T> {
    /// Creates a cell holding `value`.
    pub(crate) fn new(value: T) -> Self {
        ValueCell {
            ptr: Atomic::new(value),
        }
    }

    /// Clones the current value out.
    pub(crate) fn load(&self) -> T {
        let guard = epoch::pin();
        let shared = self.ptr.load(Ordering::Acquire, &guard);
        // SAFETY: the pointer is never null after construction and the
        // pinned epoch keeps the pointee alive for the duration of the clone.
        unsafe { shared.deref().clone() }
    }

    /// Publishes `value`, deferring destruction of the previous value until
    /// all current readers unpin.
    pub(crate) fn store(&self, value: T) {
        let guard = epoch::pin();
        let old = self.ptr.swap(Owned::new(value), Ordering::AcqRel, &guard);
        // SAFETY: `old` was the uniquely owned previous value; no new reader
        // can acquire it after the swap, and pinned readers are covered by
        // the deferred destruction.
        unsafe {
            guard.defer_destroy(old);
        }
    }
}

impl<T> Drop for ValueCell<T> {
    fn drop(&mut self) {
        let guard = epoch::pin();
        let shared = self.ptr.swap(Shared::null(), Ordering::AcqRel, &guard);
        if !shared.is_null() {
            // SAFETY: we have `&mut self`, so no concurrent reader exists;
            // the value can be dropped immediately.
            unsafe {
                drop(shared.into_owned());
            }
        }
    }
}

impl<T> fmt::Debug for ValueCell<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ValueCell { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
    use std::sync::Arc;

    #[test]
    fn load_returns_stored_value() {
        let c = ValueCell::new(41);
        assert_eq!(c.load(), 41);
        c.store(42);
        assert_eq!(c.load(), 42);
    }

    #[test]
    fn store_is_visible_to_other_threads() {
        let c = Arc::new(ValueCell::new(0u64));
        let writer = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                for i in 1..=1000 {
                    c.store(i);
                }
            })
        };
        let reader = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                let mut last = 0;
                for _ in 0..1000 {
                    let v = c.load();
                    assert!(v >= last, "values must be monotone: {v} < {last}");
                    last = v;
                }
            })
        };
        writer.join().unwrap();
        reader.join().unwrap();
        assert_eq!(c.load(), 1000);
    }

    #[test]
    fn dropping_cell_drops_value() {
        struct Tracked(Arc<AtomicUsize>);
        impl Clone for Tracked {
            fn clone(&self) -> Self {
                Tracked(Arc::clone(&self.0))
            }
        }
        impl Drop for Tracked {
            fn drop(&mut self) {
                self.0.fetch_add(1, AtomicOrdering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let cell = ValueCell::new(Tracked(Arc::clone(&drops)));
            drop(cell);
        }
        assert!(drops.load(AtomicOrdering::SeqCst) >= 1);
    }

    #[test]
    fn heavy_store_load_does_not_leak_wildly() {
        // Smoke test: epoch reclamation keeps up with churn.
        let c = ValueCell::new(vec![0u8; 1024]);
        for i in 0..10_000 {
            c.store(vec![(i % 256) as u8; 1024]);
        }
        assert_eq!(c.load()[0], ((10_000 - 1) % 256) as u8);
    }
}
