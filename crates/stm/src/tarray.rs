//! Transactional arrays.
//!
//! A `TArray<T>` is a fixed-length sequence of independently versioned
//! slots — the natural representation for the word-based workloads the
//! paper's STMs were built for (grids, adjacency tables, hash buckets).
//! Each slot is its own [`TVar`], so two transactions touching different
//! slots never conflict, while the array type provides bounds-checked
//! transactional access and whole-array helpers.

use std::fmt;

use crate::error::TxResult;
use crate::tvar::{TVar, TxValue};
use crate::txn::{Tx, TxRead};
use crate::varid::VarId;

/// A fixed-length array of transactional slots.
///
/// # Examples
///
/// ```
/// use shrink_stm::{TmRuntime, TArray};
///
/// let rt = TmRuntime::new();
/// let grid = TArray::new(16, 0u32);
///
/// rt.run(|tx| {
///     let v = grid.get(tx, 3)?;
///     grid.set(tx, 3, v + 7)
/// });
/// assert_eq!(grid.snapshot(3), 7);
/// ```
pub struct TArray<T> {
    slots: Vec<TVar<T>>,
}

impl<T: TxValue> TArray<T> {
    /// Creates an array of `len` slots, each holding a clone of `value`.
    pub fn new(len: usize, value: T) -> Self {
        TArray {
            slots: (0..len).map(|_| TVar::new(value.clone())).collect(),
        }
    }

    /// Creates an array from an iterator of initial values.
    pub fn from_values(values: impl IntoIterator<Item = T>) -> Self {
        TArray {
            slots: values.into_iter().map(TVar::new).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if the array has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The variable identifier of slot `index` (for schedulers and tests).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn id_of(&self, index: usize) -> VarId {
        self.slots[index].id()
    }

    /// Transactionally reads slot `index`.
    ///
    /// Generic over [`TxRead`]: works inside both a read-write transaction
    /// ([`TmRuntime::run`](crate::TmRuntime::run)) and a lock-free
    /// read-only one ([`TmRuntime::read_only`](crate::TmRuntime::read_only)).
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, tx: &mut impl TxRead, index: usize) -> TxResult<T> {
        tx.read(&self.slots[index])
    }

    /// Transactionally writes slot `index`.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set(&self, tx: &mut Tx<'_>, index: usize, value: T) -> TxResult<()> {
        tx.write(&self.slots[index], value)
    }

    /// Transactionally applies `f` to slot `index`.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn update(&self, tx: &mut Tx<'_>, index: usize, f: impl FnOnce(T) -> T) -> TxResult<()> {
        tx.modify(&self.slots[index], f)
    }

    /// Transactionally reads the whole array in index order.
    ///
    /// Generic over [`TxRead`]: from a read-only transaction this is the
    /// consistent, version-stamped counterpart of
    /// [`TArray::snapshot_all`] — the returned view is guaranteed valid at
    /// the transaction's
    /// [`start_timestamp`](crate::ReadTx::start_timestamp), and a
    /// revalidation failure restarts the reader without touching any orec.
    ///
    /// # Errors
    ///
    /// Propagates transactional aborts.
    pub fn read_all(&self, tx: &mut impl TxRead) -> TxResult<Vec<T>> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            out.push(tx.read(slot)?);
        }
        Ok(out)
    }

    /// Non-transactional read of slot `index` (latest committed value; no
    /// cross-slot consistency).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn snapshot(&self, index: usize) -> T {
        self.slots[index].snapshot()
    }

    /// Non-transactional read of every slot in index order (latest committed
    /// values; no cross-slot consistency — use [`TArray::read_all`] inside a
    /// transaction for a consistent view). Each slot read is lock-free.
    pub fn snapshot_all(&self) -> Vec<T> {
        self.slots.iter().map(TVar::snapshot).collect()
    }

    /// True when the slots use the inline seqlock fast path (see
    /// [`TVar::uses_inline_storage`]).
    pub fn uses_inline_storage(&self) -> bool {
        self.slots.first().is_none_or(TVar::uses_inline_storage)
    }
}

impl<T> fmt::Debug for TArray<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TArray(len={})", self.slots.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::TmRuntime;
    use std::sync::Arc;

    #[test]
    fn construction_and_snapshot() {
        let a = TArray::new(4, 9u64);
        assert_eq!(a.len(), 4);
        assert!(!a.is_empty());
        assert_eq!(a.snapshot(2), 9);
        let b = TArray::from_values([1u64, 2, 3]);
        assert_eq!(b.snapshot(0), 1);
        assert_eq!(b.snapshot(2), 3);
    }

    #[test]
    fn slots_have_distinct_ids() {
        let a = TArray::new(3, 0u8);
        assert_ne!(a.id_of(0), a.id_of(1));
        assert_ne!(a.id_of(1), a.id_of(2));
    }

    #[test]
    fn transactional_get_set_update() {
        let rt = TmRuntime::new();
        let a = TArray::new(8, 0i64);
        rt.run(|tx| {
            a.set(tx, 1, 10)?;
            a.update(tx, 1, |v| v * 3)
        });
        assert_eq!(a.snapshot(1), 30);
        let all = rt.run(|tx| a.read_all(tx));
        assert_eq!(all.iter().sum::<i64>(), 30);
    }

    #[test]
    fn disjoint_slots_commute_under_concurrency() {
        let rt = TmRuntime::new();
        let a = Arc::new(TArray::new(4, 0u64));
        let handles: Vec<_> = (0..4usize)
            .map(|slot| {
                let rt = rt.clone();
                let a = Arc::clone(&a);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        rt.run(|tx| a.update(tx, slot, |v| v + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for slot in 0..4 {
            assert_eq!(a.snapshot(slot), 500);
        }
    }

    #[test]
    fn snapshot_all_reads_every_slot() {
        let a = TArray::from_values([4u64, 5, 6]);
        assert!(a.uses_inline_storage());
        assert_eq!(a.snapshot_all(), vec![4, 5, 6]);
        let empty: TArray<u64> = TArray::new(0, 0);
        assert!(empty.snapshot_all().is_empty());
        assert!(empty.uses_inline_storage());
    }

    #[test]
    fn read_all_works_from_a_read_only_transaction() {
        let rt = TmRuntime::new();
        let a = TArray::from_values([1u64, 2, 3, 4]);
        rt.run(|tx| a.set(tx, 2, 30));
        let (view, stamp) = rt.read_only(|tx| {
            let view = a.read_all(tx)?;
            Ok((view, tx.start_timestamp()))
        });
        assert_eq!(view, vec![1, 2, 30, 4]);
        assert!(stamp >= 1, "the view is version-stamped");
        // The bulk read took no locks: the only orec traffic was the
        // earlier read-write set().
        assert_eq!(rt.stats().orec_acquires, 1);
        assert_eq!(rt.stats().ro_reads, 4);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        let rt = TmRuntime::new();
        let a = TArray::new(2, 0u8);
        rt.run(|tx| a.get(tx, 5));
    }
}
