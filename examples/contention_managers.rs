//! "Curing" conflicts: the classic contention managers compared on a hot
//! counter, illustrating the paper's titular contrast — these policies act
//! only *after* a conflict exists, while Shrink prevents the conflict from
//! being scheduled at all.
//!
//! Run with: `cargo run --release --example contention_managers`

use std::sync::Arc;
use std::time::Instant;

use shrink::prelude::*;
use shrink::stm::CmPolicy;

fn main() {
    const THREADS: usize = 8;
    const INCREMENTS: usize = 2_000;
    println!(
        "{:>12} {:>10} {:>10} {:>12}",
        "cm", "commits", "aborts", "elapsed"
    );
    for policy in [
        CmPolicy::TwoPhase,
        CmPolicy::Suicide,
        CmPolicy::Polite,
        CmPolicy::Karma,
    ] {
        let rt = TmRuntime::builder()
            .backend(BackendKind::Swiss)
            .cm_policy(policy)
            .build();
        let hot = TVar::new(0u64);
        let started = Instant::now();
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let rt = rt.clone();
                let hot = hot.clone();
                std::thread::spawn(move || {
                    for _ in 0..INCREMENTS {
                        rt.run(|tx| tx.modify(&hot, |v| v + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker panicked");
        }
        let stats = rt.stats();
        assert_eq!(hot.snapshot(), (THREADS * INCREMENTS) as u64);
        println!(
            "{:>12} {:>10} {:>10} {:>10.0}ms",
            policy.to_string(),
            stats.commits,
            stats.aborts,
            started.elapsed().as_secs_f64() * 1000.0
        );
    }
    println!("all policies serialized the hot counter correctly");
    let _ = Arc::new(()); // keep the import shape consistent with other examples
}
