//! The STAMP `vacation` workload as an application demo: a travel agency
//! booking cars, flights and rooms against a transactional database, with
//! the billing invariant audited at the end.
//!
//! Run with: `cargo run --release --example vacation_booking`

use std::sync::Arc;

use shrink::prelude::*;
use shrink::workloads::harness::run_fixed_steps;
use shrink::workloads::stamp::{Vacation, VacationConfig};

fn main() {
    let shrink = Arc::new(Shrink::new(ShrinkConfig::default()));
    let rt = TmRuntime::builder()
        .backend(BackendKind::Swiss)
        .scheduler_arc(shrink.clone())
        .build();

    let agency = Arc::new(Vacation::new(
        &rt,
        VacationConfig::high_contention(),
        "vacation-high",
    ));

    // Eight concurrent booking clerks, 500 client requests each.
    let workload: Arc<dyn TxWorkload> = agency.clone();
    run_fixed_steps(&rt, &workload, 8, 500, 0xB00C);

    let stats = rt.stats();
    println!("database after 4000 client requests:");
    println!("  {stats}");
    println!("  total billed: {}", agency.total_billed(&rt));
    println!("  shrink: {:?}", shrink.prediction_stats());

    agency
        .verify(&rt)
        .expect("reservations and billing must reconcile");
    println!("  billing audit: OK (bills match reservations exactly)");
}
