//! A two-shard booking service in miniature: the STAMP `vacation` idea
//! grown into the sharded deployment DESIGN.md §13 describes.
//!
//! Two `TmRuntime`s — two independent clocks, orec tables, waitlists and
//! Shrink scheduler instances — each own half the keys of a
//! `ShardedStore`. Concurrent clerks move money between shards through
//! the four-phase escrow protocol and book two-leg trips whose first
//! unit comes from whichever shard frees capacity first (a cross-runtime
//! `retry_select` parks one waiter across both runtimes' waitlists).
//! While they work, an auditor repeatedly takes the freeze-gated
//! distributed snapshot: conservation must be exact on every one, not
//! just at the end.
//!
//! Run with: `cargo run --release --example vacation_booking`

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use shrink::prelude::*;
use shrink::stm::registry;
use shrink::workloads::service::{BookingOutcome, ShardedStore};

const ACCOUNTS_PER_SHARD: usize = 8;
const INITIAL_BALANCE: i64 = 500;
const SEATS_PER_SHARD: i64 = 1;
const CLERKS: usize = 4;
const REQUESTS_PER_CLERK: usize = 200;

fn main() {
    // One Shrink scheduler per shard: prediction state is per-runtime,
    // exactly as it would be per-process in a real deployment.
    let mut store = ShardedStore::new(
        2,
        ACCOUNTS_PER_SHARD,
        INITIAL_BALANCE,
        SEATS_PER_SHARD,
        |_| {
            TmRuntime::builder()
                .backend(BackendKind::Swiss)
                .scheduler_arc(Arc::new(Shrink::new(ShrinkConfig::default())))
                .build()
        },
    );
    // Simulated service work inside each transaction body: holds stay open
    // long enough that bookings genuinely contend for the scarce seats and
    // the cross-runtime select actually parks.
    store.set_tx_work(20_000);
    let store = Arc::new(store);
    println!(
        "two shards ({} runtimes live in the process registry), {} keys, {} minted",
        registry::registered_runtimes(),
        store.n_keys(),
        store.expected_total()
    );

    // Curtain-raiser: hold every seat on both shards, start a booking —
    // its first-leg select finds nothing and parks ONE waiter across both
    // runtimes' waitlists — then release the seats; the release commit on
    // either shard wakes it.
    store.hold_all_capacity();
    let waiter = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || store.book(0, 1, Instant::now() + Duration::from_secs(30)))
    };
    while store.runtime(0).retry_waiters() == 0 || store.runtime(1).retry_waiters() == 0 {
        std::thread::yield_now();
    }
    store.release_all_holds();
    assert_eq!(waiter.join().unwrap(), BookingOutcome::Confirmed);
    assert!(registry::select_stats().parked >= 1);
    println!(
        "a booking against two sold-out shards parked across both waitlists \
         and was woken by the seat-release commit"
    );

    let stop = Arc::new(AtomicBool::new(false));
    let auditor = {
        let (store, stop) = (Arc::clone(&store), Arc::clone(&stop));
        std::thread::spawn(move || {
            let mut audits = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Freeze-gated distributed snapshot: exact even while
                // transfers sit between escrow phases on the two shards.
                assert_eq!(store.audit_conservation(), store.expected_total());
                audits += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            audits
        })
    };

    let clerks: Vec<_> = (0..CLERKS)
        .map(|c| {
            let store = Arc::clone(&store);
            std::thread::spawn(move || {
                let mut seed = 0xB00C_u64 ^ ((c as u64) << 32);
                let mut confirmed = 0u64;
                let mut declined = 0u64;
                for _ in 0..REQUESTS_PER_CLERK {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let a = (seed >> 33) as usize % store.n_keys();
                    let b = (seed >> 13) as usize % store.n_keys();
                    if seed % 2 == 0 {
                        // A two-leg trip: car on one shard, room on the
                        // other. The deadline bounds blocking; a timed-out
                        // second leg compensates by releasing the first.
                        let deadline = Instant::now() + Duration::from_millis(20);
                        match store.book(a, a + 1, deadline) {
                            BookingOutcome::Confirmed => confirmed += 1,
                            BookingOutcome::Declined => declined += 1,
                        }
                    } else {
                        // Billing traffic, often crossing the shard line.
                        store.transfer(a, b, (seed % 7) as i64);
                    }
                }
                (confirmed, declined)
            })
        })
        .collect();

    let mut confirmed = 0u64;
    let mut declined = 0u64;
    for clerk in clerks {
        let (c, d) = clerk.join().expect("clerk panicked");
        confirmed += c;
        declined += d;
    }
    stop.store(true, Ordering::Relaxed);
    let audits = auditor.join().expect("auditor panicked");

    println!("after {} client requests:", CLERKS * REQUESTS_PER_CLERK);
    for shard in 0..store.n_shards() {
        println!("  shard {shard}: {}", store.runtime(shard).stats());
    }
    let stats = registry::select_stats();
    println!("  bookings: {confirmed} confirmed, {declined} declined (deadline-compensated)");
    println!(
        "  cross-runtime selects: {} rounds, {} parked, {} woken",
        stats.rounds, stats.parked, stats.woken
    );
    println!("  mid-flight distributed audits: {audits}, every one exact");

    // The books reconcile: seats all returned, escrow drained, money intact.
    // (+1: the curtain-raiser booking confirmed too.)
    assert_eq!(store.audit_bookings(), confirmed + 1);
    assert_eq!(store.pending_transfers(), 0);
    assert_eq!(store.audit_conservation(), store.expected_total());
    println!("  final audit: OK (conservation exact, escrow drained)");
}
