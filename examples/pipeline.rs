//! A blocking three-stage pipeline built from `retry`/`or_else`.
//!
//! Stage 1 generates numbers, stage 2 (a pool of workers) squares them,
//! stage 3 sums the results — connected by bounded [`TxQueue`]s. Nobody
//! polls: a stage whose input queue is empty (or output queue is full)
//! blocks inside `Tx::retry`, parked on the queue's stripes, and is woken
//! by the neighbouring stage's commit. Shutdown is a transactional
//! poison-pill per worker, pushed through the same queues.
//!
//! Run with: `cargo run --release --example pipeline`

use std::sync::Arc;

use shrink::prelude::*;

const ITEMS: u64 = 5_000;
const WORKERS: usize = 3;
/// Poison pill: tells a squaring worker to shut down.
const STOP: u64 = u64::MAX;

fn main() {
    let rt = TmRuntime::new();
    let raw: Arc<TxQueue<u64>> = Arc::new(TxQueue::new(16));
    let squared: Arc<TxQueue<u64>> = Arc::new(TxQueue::new(16));

    // Stage 2: a pool of squaring workers. `pop` blocks while `raw` is
    // empty; `push` blocks while `squared` is full. Each pop+push is ONE
    // transaction: an item is never in both queues, never in neither.
    let squarers: Vec<_> = (0..WORKERS)
        .map(|_| {
            let rt = rt.clone();
            let raw = Arc::clone(&raw);
            let squared = Arc::clone(&squared);
            std::thread::spawn(move || loop {
                let done = atomically(&rt, |tx| {
                    let n = raw.pop(tx)?;
                    if n == STOP {
                        return Ok(true);
                    }
                    squared.push(tx, n * n)?;
                    Ok(false)
                });
                if done {
                    return;
                }
            })
        })
        .collect();

    // Stage 3: the folding sink, blocking on its input queue.
    let sink = {
        let rt = rt.clone();
        let squared = Arc::clone(&squared);
        std::thread::spawn(move || {
            let mut sum: u64 = 0;
            for _ in 0..ITEMS {
                sum += atomically(&rt, |tx| squared.pop(tx));
            }
            sum
        })
    };

    // Stage 1: the generator, blocking while the pipe is full — natural
    // backpressure, no rate control code at all.
    for n in 1..=ITEMS {
        atomically(&rt, |tx| raw.push(tx, n));
    }
    // Poison the worker pool (one pill each) through the same queue.
    for _ in 0..WORKERS {
        atomically(&rt, |tx| raw.push(tx, STOP));
    }

    let sum = sink.join().expect("sink panicked");
    for s in squarers {
        s.join().expect("squarer panicked");
    }

    let expected: u64 = (1..=ITEMS).map(|n| n * n).sum();
    let stats = rt.stats();
    let waits = rt.retry_stats();
    println!("sum of squares 1..={ITEMS}: {sum} (expected {expected})");
    println!(
        "transactions: {stats} + {} parked retry rounds",
        stats.retry_waits
    );
    println!(
        "retry wake path: {} parked, {} woken by commits, {} timed out, {} wasted wakes",
        waits.parked_waits, waits.woken, waits.timed_out, waits.wasted_wakes
    );
    assert_eq!(
        sum, expected,
        "pipeline must deliver every item exactly once"
    );
}
