//! Quickstart: composable atomic operations with a Shrink-scheduled STM.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;

use shrink::prelude::*;

fn main() {
    // A runtime with the paper's scheduler. Keeping the typed Arc lets us
    // read Shrink's prediction statistics afterwards.
    let shrink = Arc::new(Shrink::new(ShrinkConfig::default()));
    let rt = TmRuntime::builder()
        .backend(BackendKind::Swiss)
        .scheduler_arc(shrink.clone())
        .build();

    // A tiny bank: ten accounts, four threads shuffling money around.
    let accounts: Arc<Vec<TVar<i64>>> = Arc::new((0..10).map(|_| TVar::new(100)).collect());

    let handles: Vec<_> = (0..4)
        .map(|worker| {
            let rt = rt.clone();
            let accounts = Arc::clone(&accounts);
            std::thread::spawn(move || {
                let mut seed: u64 = worker + 1;
                for _ in 0..2_000 {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (seed >> 33) as usize % accounts.len();
                    let to = (seed >> 17) as usize % accounts.len();
                    if from == to {
                        continue;
                    }
                    // The whole transfer is one atomic transaction; `?`
                    // propagates aborts to the retry loop.
                    rt.run(|tx| {
                        let a = tx.read(&accounts[from])?;
                        if a < 1 {
                            return Ok(()); // insufficient funds; commit empty
                        }
                        let b = tx.read(&accounts[to])?;
                        tx.write(&accounts[from], a - 1)?;
                        tx.write(&accounts[to], b + 1)
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }

    let total: i64 = accounts.iter().map(|a| a.snapshot()).sum();
    let stats = rt.stats();
    println!("final balance total: {total} (expected 1000)");
    println!("transactions: {stats}");
    println!("shrink prediction stats: {:?}", shrink.prediction_stats());
    assert_eq!(total, 1000, "money must be conserved");
}
