//! The theory of Section 2, live: competitive ratios of Serializer, ATS,
//! Restart and Inaccurate on the paper's lower-bound families.
//!
//! Run with: `cargo run --release --example theory_bounds`

use shrink::theory::{
    ats_makespan, head_to_head, inaccurate_makespan, restart_makespan, scenarios,
    serializer_makespan,
};

fn main() {
    println!("Figure 2(a) star family (OPT = 2):");
    println!(
        "{:>6} {:>12} {:>10} {:>8}",
        "n", "serializer", "restart", "ratio"
    );
    for n in [4, 8, 16, 32, 64] {
        let inst = scenarios::serializer_star(n);
        let ser = serializer_makespan(&inst);
        let res = restart_makespan(&inst);
        println!(
            "{n:>6} {:>12} {:>10} {:>8.1}",
            ser.makespan,
            res.makespan,
            ser.makespan as f64 / 2.0
        );
    }

    println!();
    println!("Figure 2(b) hub family with k = 4 (OPT = 5):");
    println!("{:>6} {:>12} {:>10}", "n", "ats", "restart");
    for n in [4, 8, 16, 32, 64] {
        let inst = scenarios::ats_hub(n, 4);
        println!(
            "{n:>6} {:>12} {:>10}",
            ats_makespan(&inst, 4).makespan,
            restart_makespan(&inst).makespan
        );
    }

    println!();
    println!("Theorem 3: a slightly wrong prediction ruins Restart (OPT = 1):");
    for n in [4, 16, 64] {
        let inst = scenarios::independent_unit(n);
        let belief = scenarios::inaccurate_belief(n);
        println!(
            "  n = {n:>3}: inaccurate makespan = {}",
            inaccurate_makespan(&inst, &belief).makespan
        );
    }

    println!();
    println!("Head-to-head on one random instance (12 jobs, density 3/8):");
    let inst = scenarios::random_instance(12, 4, 96, 2026);
    for (name, point) in head_to_head(&inst, 3) {
        println!("  {name:>10}: {point}");
    }
}
