//! The blocking pipeline of `examples/pipeline.rs`, rebuilt on futures:
//! the same bounded [`TxQueue`]s and the same one-transaction pop+push
//! hops, but every stage is a *task* on a small thread pool instead of an
//! OS thread. A stage whose input queue is empty (or output queue full)
//! suspends its future inside `Tx::retry` — its `Waker` parks on the
//! queue's stripes — and the neighbouring stage's commit wakes it. Many
//! more stages than worker threads run concurrently; none of them owns a
//! thread while blocked.
//!
//! Run with: `cargo run --release --example pipeline_async`

use std::sync::mpsc;
use std::sync::Arc;

use futures::executor::ThreadPool;
use shrink::prelude::*;

const ITEMS: u64 = 5_000;
/// Squaring tasks — note: more tasks than pool threads, on purpose.
const WORKERS: usize = 8;
/// Worker threads actually driving all the tasks.
const POOL_THREADS: usize = 2;
/// Poison pill: tells a squaring task to shut down.
const STOP: u64 = u64::MAX;

fn main() {
    let rt = TmRuntime::new();
    let raw: Arc<TxQueue<u64>> = Arc::new(TxQueue::new(16));
    let squared: Arc<TxQueue<u64>> = Arc::new(TxQueue::new(16));
    let pool = ThreadPool::builder()
        .pool_size(POOL_THREADS)
        .name_prefix("pipeline-")
        .create()
        .expect("spawn executor");

    // Stage 2: squaring tasks. Each pop+push is ONE transaction, exactly
    // as in the thread version — the body is still a synchronous closure;
    // only the *blocking* became a suspension.
    let (worker_done, workers_done) = mpsc::channel::<()>();
    for _ in 0..WORKERS {
        let rt = rt.clone();
        let raw = Arc::clone(&raw);
        let squared = Arc::clone(&squared);
        let done = worker_done.clone();
        pool.spawn_ok(async move {
            loop {
                let raw = Arc::clone(&raw);
                let squared = Arc::clone(&squared);
                let stop = atomically_async(&rt, move |tx| {
                    let n = raw.pop(tx)?;
                    if n == STOP {
                        return Ok(true);
                    }
                    squared.push(tx, n * n)?;
                    Ok(false)
                })
                .await;
                if stop {
                    done.send(()).expect("main waits for workers");
                    return;
                }
            }
        });
    }
    drop(worker_done);

    // Stage 3: the folding sink — a future too, spawned on the same pool.
    let (sum_out, sum_in) = mpsc::channel::<u64>();
    {
        let rt = rt.clone();
        let squared = Arc::clone(&squared);
        pool.spawn_ok(async move {
            let mut sum: u64 = 0;
            for _ in 0..ITEMS {
                let squared = Arc::clone(&squared);
                sum += atomically_async(&rt, move |tx| squared.pop(tx)).await;
            }
            sum_out.send(sum).expect("main waits for the sum");
        });
    }

    // Stage 1: the generator, driven to completion on the main thread with
    // `block_on` — backpressure suspends it while the pipe is full.
    futures::executor::block_on(async {
        for n in 1..=ITEMS {
            let raw = Arc::clone(&raw);
            atomically_async(&rt, move |tx| raw.push(tx, n)).await;
        }
        // Poison the worker tasks (one pill each) through the same queue.
        for _ in 0..WORKERS {
            let raw = Arc::clone(&raw);
            atomically_async(&rt, move |tx| raw.push(tx, STOP)).await;
        }
    });

    let sum = sum_in.recv().expect("sink task panicked");
    for _ in 0..WORKERS {
        workers_done.recv().expect("worker task panicked");
    }

    let expected: u64 = (1..=ITEMS).map(|n| n * n).sum();
    let stats = rt.stats();
    let waits = rt.retry_stats();
    println!("sum of squares 1..={ITEMS}: {sum} (expected {expected})");
    println!(
        "transactions: {stats} + {} retry suspensions across {} tasks on {POOL_THREADS} threads",
        stats.retry_waits,
        WORKERS + 2
    );
    println!(
        "async wake path: {} suspensions, {} woken by commits, {} wakers delivered, {} wasted",
        waits.async_parks, waits.async_woken, waits.tasks_woken, waits.wasted_wakes
    );
    assert_eq!(
        sum, expected,
        "pipeline must deliver every item exactly once"
    );
    assert_eq!(
        waits.parked_waits, 0,
        "nothing in this example ever parks a thread in retry"
    );
}
