//! Compare every scheduler on the red-black-tree microbenchmark.
//!
//! Mirrors the paper's Figure 7/11 setting at a demo scale: a shared
//! 16384-key tree under a 70 % update mix, measured at a few thread
//! counts per scheduler.
//!
//! Run with: `cargo run --release --example rbtree_contention`

use std::sync::Arc;
use std::time::Duration;

use shrink::prelude::*;
use shrink::workloads::harness::{run_throughput, RunConfig};
use shrink::workloads::RbTreeWorkload;

fn main() {
    let schedulers = [
        SchedulerKind::Noop,
        SchedulerKind::shrink_default(),
        SchedulerKind::ats_default(),
        SchedulerKind::Pool,
    ];
    let threads = [1usize, 4, 16];

    println!(
        "{:>12} {:>8} {:>14} {:>12}",
        "scheduler", "threads", "commits/s", "aborts/commit"
    );
    for kind in &schedulers {
        for &t in &threads {
            let rt = TmRuntime::builder()
                .backend(BackendKind::Swiss)
                .scheduler_arc(kind.build())
                .build();
            let workload: Arc<dyn TxWorkload> = Arc::new(RbTreeWorkload::new(&rt, 16384, 70));
            let outcome = run_throughput(
                &rt,
                &workload,
                &RunConfig::new(t, Duration::from_millis(200)),
            );
            println!(
                "{:>12} {:>8} {:>14.0} {:>12.3}",
                kind.label(),
                t,
                outcome.throughput(),
                outcome.abort_ratio()
            );
            workload
                .verify(&rt)
                .expect("red-black invariants must hold after the run");
        }
    }
}
