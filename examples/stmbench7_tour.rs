//! A tour of the STMBench7 port: build the CAD object graph, run each
//! workload mix under base and Shrink scheduling, and audit consistency.
//!
//! Run with: `cargo run --release --example stmbench7_tour`

use std::sync::Arc;
use std::time::Duration;

use shrink::prelude::*;
use shrink::workloads::harness::{run_throughput, RunConfig};
use shrink::workloads::stmbench7::{Sb7Config, Sb7Mix, Sb7Workload};

fn main() {
    let threads = 8;
    println!(
        "{:>16} {:>10} {:>14} {:>14}",
        "mix", "scheduler", "commits/s", "aborts/commit"
    );
    for mix in Sb7Mix::all() {
        for kind in [SchedulerKind::Noop, SchedulerKind::shrink_default()] {
            let rt = TmRuntime::builder()
                .backend(BackendKind::Swiss)
                .scheduler_arc(kind.build())
                .build();
            let workload: Arc<dyn TxWorkload> =
                Arc::new(Sb7Workload::new(&rt, Sb7Config::default(), mix));
            let outcome = run_throughput(
                &rt,
                &workload,
                &RunConfig::new(threads, Duration::from_millis(250)),
            );
            println!(
                "{:>16} {:>10} {:>14.0} {:>14.3}",
                mix.label(),
                kind.label(),
                outcome.throughput(),
                outcome.abort_ratio()
            );
            workload
                .verify(&rt)
                .expect("the CAD graph must stay consistent");
        }
    }
    println!("all post-run audits passed (indexes, part graphs, RB invariants)");
}
